// Simulator graph builders for lulesh-mini: the intra-node TDG (Figs. 1,
// 2, 6, Tables 1-2) and the distributed TDG with the paper's 3D rank cube
// and its 26-neighbour exchange of three message size classes — corner
// O(1), edge O(s), face O(s^2) bytes (Section 4.1) — which selects eager
// vs rendezvous protocols in the network model.
#pragma once

#include "apps/lulesh/lulesh.hpp"
#include "sim/graph.hpp"

namespace tdg::apps::lulesh {

struct SimGraphOptions {
  Config cfg;  ///< tpl, iterations, minimized_deps, sim_scale
  sim::SimGraphBuilder::Options builder;  ///< optimizations (b), (c)
  /// Persistent capture: only iteration 0 is emitted (the simulator
  /// replays it); otherwise all iterations with cross-iteration edges.
  bool persistent = false;

  /// 3D rank grid (Fig. 7: 5x5x5). When volume > 1, the graph includes
  /// the dt allreduce and 26-neighbour exchanges for this rank.
  int rx = 1, ry = 1, rz = 1;
  int rank = 0;
  /// Per-rank mesh edge s: message sizes are 8, 8s, 8s^2 bytes.
  std::int64_t s = 64;
  /// Section 4.1 ablation: bracket the communication sequence with
  /// taskwait-equivalent dependences (sends wait for the whole iteration)
  /// instead of fine dataflow integration.
  bool taskwait_around_comm = false;
};

/// Build this rank's TDG. In a multi-rank grid every rank must build with
/// the same options (only `rank` differing) so messages pair up.
sim::SimGraph build_sim_graph(const SimGraphOptions& opts);

}  // namespace tdg::apps::lulesh
