// lulesh-mini: a Sedov-like explicit shock-hydro proxy with the loop and
// dependency skeleton of LULESH (Section 2): an iteration is a dt
// reduction (MPI collective), a sequence of mesh-wide loops blocked into
// TPL tasks with 3-block stencil dependences, and a frontier exchange with
// neighbour ranks. Kernels are real floating-point updates; blocking never
// changes the arithmetic, so the task-based, parallel-for and distributed
// variants are bit-comparable against the serial reference.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/emitter.hpp"
#include "core/runtime.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace tdg::apps::lulesh {

struct Config {
  /// Interior points per rank (the paper's s^3 mesh flattened; kernels use
  /// a 1D stencil so any npoints is valid).
  std::int64_t npoints = 4096;
  int iterations = 4;
  int tpl = 8;  ///< tasks per mesh-wide loop
  /// Optimization (a): express the minimal depend clause. When false, every
  /// loop also declares a redundant alias address per block, reproducing
  /// the duplicated-dependence pattern of Fig. 3.
  bool minimized_deps = true;
  /// Integrate the dt allreduce + frontier exchange into the TDG; when
  /// false no communication tasks are emitted (single-process runs).
  bool distributed = false;
  /// Simulator cost scaling: each point stands for `sim_scale` points of
  /// the modelled problem (grain and working-set hints are multiplied).
  /// Lets paper-scale graphs (s=384 ~ 56M points) be described with small
  /// arrays: the dependency structure only needs npoints >= tpl.
  double sim_scale = 1.0;
};

/// The mesh state: arrays of npoints + 2 ghost slots ([0] and [n+1]).
struct Mesh {
  explicit Mesh(std::int64_t npoints);

  /// Re-initialize as the partition [offset+1, offset+n] of a global mesh
  /// of `global_n` points (1D rank decomposition). A single-rank mesh is
  /// the partition (global_n = n, offset = 0).
  void init_partition(std::int64_t global_n, std::int64_t offset);

  std::int64_t n;  ///< interior points; valid indices are 1..n
  double dx0 = 0;  ///< global lattice spacing (kinematics reference)
  std::vector<double> x, xd, xdd, f;           // "node" family
  std::vector<double> p, q, e, v, delv, arealg, ss, mass;  // "element" family
  double dt = 1e-5;
  double time = 0;

  /// Deterministic digest for cross-variant comparison (exact equality).
  struct Digest {
    double sum_e, sum_x, sum_xd, dt;
    bool operator==(const Digest&) const = default;
  };
  Digest digest() const;
  bool all_finite() const;
};

/// Per-rank halo context for the distributed variant (1D rank chain).
struct Halo {
  int left = -1;   ///< neighbour ranks; -1 = physical boundary
  int right = -1;
  double sbuf_l = 0, sbuf_r = 0, rbuf_l = 0, rbuf_r = 0;
  double dt_local = 0;  ///< allreduce input slot
  double dt_red = 0;    ///< allreduce output slot
};

/// Logical-address helpers for graph extensions (the 26-neighbour
/// exchange model couples into the iteration structure through these).
namespace addr {
LAddr x_block(int b);
LAddr ss_summary();
}  // namespace addr

/// Serial reference: the original "parallel-for" algorithm run on one
/// thread, one block. Mutates `mesh`.
void run_reference(Mesh& mesh, const Config& cfg);

/// Emit one iteration of the dependent-task version through an Emitter.
/// `iteration` is forwarded to profiling labels; `halo` may be null for
/// non-distributed graphs.
void emit_iteration(Emitter& em, Mesh& mesh, const Config& cfg,
                    std::uint32_t iteration, Halo* halo);

/// Task-based shared-memory run (optionally under a persistent region).
void run_taskbased(Runtime& rt, Mesh& mesh, const Config& cfg,
                   bool persistent);

/// parallel-for style run: taskloop per mesh-wide loop with a taskwait
/// barrier after each (the BSP reference of the paper).
void run_parallel_for(Runtime& rt, Mesh& mesh, const Config& cfg);

/// Distributed task-based run: this rank's portion of a 1D-decomposed
/// domain; communications are tasks in the TDG (Listing 1).
void run_distributed(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                     Mesh& mesh, const Config& cfg, bool persistent);

/// Distributed run with an explicit peer-death recovery mode. Unlike the
/// plain variant it drains at every iteration boundary, which is what
/// lets a peer death cascade to termination: in Poison mode the taskwait
/// surfaces the poisoning so the rank exits and its peers' receives fail
/// fast; ShrinkRedistribute additionally re-reads the ring topology from
/// the failure detector before every iteration, so a dead neighbour
/// structurally heals into either the next survivor or the physical-
/// boundary ghost clamp, comm tasks are emitted idempotent, and in-flight
/// receives orphaned by a death complete locally. Shrink requires
/// `persistent == false` (the captured graph could not change shape).
void run_distributed(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                     Mesh& mesh, const Config& cfg, bool persistent,
                     RecoveryMode recovery);

}  // namespace tdg::apps::lulesh
