// lulesh-mini block kernels. Every kernel updates a contiguous index range
// [lo, hi) (1-based interior indices) with elementwise or fixed-stencil
// arithmetic, so results are independent of the blocking (TPL) and the
// task / parallel-for / serial variants are exactly comparable.
//
// The loop sequence mirrors a LULESH time step: stress and hourglass force
// -> acceleration -> boundary conditions -> velocity -> position ->
// kinematics -> artificial viscosity -> EOS -> sound speed -> dt courant
// reduction.
#pragma once

#include <cstdint>

#include "apps/lulesh/lulesh.hpp"

namespace tdg::apps::lulesh::kernels {

/// L1: f = -(p + q) * arealg (stress contribution).
void stress_force(Mesh& m, std::int64_t lo, std::int64_t hi);
/// L2: f += hg * (x[i-1] - 2 x[i] + x[i+1]) * mass (hourglass filter);
/// reads the x stencil, including ghosts at the partition frontier.
void hourglass_force(Mesh& m, std::int64_t lo, std::int64_t hi);
/// L3: xdd = f / mass.
void acceleration(Mesh& m, std::int64_t lo, std::int64_t hi);
/// L4: symmetry boundary: zero acceleration at the global domain ends.
/// `global_first`/`global_last` flag whether this rank owns them.
void boundary(Mesh& m, std::int64_t lo, std::int64_t hi, bool global_first,
              bool global_last);
/// L5: xd += xdd * dt, with the LULESH small-velocity cutoff.
void velocity(Mesh& m, std::int64_t lo, std::int64_t hi, double dt);
/// L6: x += xd * dt.
void position(Mesh& m, std::int64_t lo, std::int64_t hi, double dt);
/// L7: kinematics: relative volume from the x stencil, delv, arealg.
void kinematics(Mesh& m, std::int64_t lo, std::int64_t hi);
/// L8: artificial viscosity from compression rate.
void viscosity(Mesh& m, std::int64_t lo, std::int64_t hi);
/// L9: energy + pressure update (ideal-gas-like EOS, positivity-guarded).
void eos(Mesh& m, std::int64_t lo, std::int64_t hi);
/// L10: sound speed from the updated state.
void sound_speed(Mesh& m, std::int64_t lo, std::int64_t hi);
/// L0: local courant/hydro dt constraint over [lo, hi).
double local_dt(const Mesh& m, std::int64_t lo, std::int64_t hi);
/// Combine the reduced dt constraint with the previous dt (growth cap).
double apply_dt_bounds(double reduced, double prev_dt);

/// Ghost handling at physical boundaries: zero-gradient extrapolation.
void clamp_left_ghost(Mesh& m);
void clamp_right_ghost(Mesh& m);

}  // namespace tdg::apps::lulesh::kernels
