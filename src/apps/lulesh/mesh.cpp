#include "apps/lulesh/lulesh.hpp"

#include <cmath>

namespace tdg::apps::lulesh {

Mesh::Mesh(std::int64_t npoints) : n(npoints) {
  init_partition(npoints, 0);
}

void Mesh::init_partition(std::int64_t global_n, std::int64_t offset) {
  const std::size_t sz = static_cast<std::size_t>(n) + 2;  // + ghosts
  x.assign(sz, 0.0);
  xd.assign(sz, 0.0);
  xdd.assign(sz, 0.0);
  f.assign(sz, 0.0);
  p.assign(sz, 0.0);
  q.assign(sz, 0.0);
  e.assign(sz, 0.0);
  v.assign(sz, 1.0);
  delv.assign(sz, 0.0);
  arealg.assign(sz, 0.0);
  ss.assign(sz, 0.0);
  mass.assign(sz, 0.0);
  dt = 1e-5;
  time = 0;
  // Sedov-like setup: uniform lattice, all energy deposited at the origin.
  dx0 = 1.0 / static_cast<double>(global_n);
  for (std::int64_t i = 0; i <= n + 1; ++i) {
    x[static_cast<std::size_t>(i)] =
        static_cast<double>(offset + i) * dx0;
  }
  for (std::int64_t i = 1; i <= n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    mass[u] = dx0;
    arealg[u] = dx0;
    ss[u] = 1.0;
  }
  // Deposit the energy spike at the global domain centre (the 1D analogue
  // of the Sedov origin; the boundary clamp would freeze a corner spike).
  const std::int64_t centre = global_n / 2;
  const std::int64_t local = centre - offset;
  if (local >= 1 && local <= n) {
    e[static_cast<std::size_t>(local)] = 3.948746e+1;
    p[static_cast<std::size_t>(local)] = 1.0;
  }
}

Mesh::Digest Mesh::digest() const {
  Digest d{0, 0, 0, dt};
  for (std::int64_t i = 1; i <= n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    d.sum_e += e[u];
    d.sum_x += x[u];
    d.sum_xd += xd[u];
  }
  return d;
}

bool Mesh::all_finite() const {
  for (const auto* arr : {&x, &xd, &xdd, &f, &p, &q, &e, &v, &delv,
                          &arealg, &ss}) {
    for (double val : *arr) {
      if (!std::isfinite(val)) return false;
    }
  }
  return std::isfinite(dt);
}

}  // namespace tdg::apps::lulesh
