#include "apps/lulesh/simgraph.hpp"

#include "core/common.hpp"

namespace tdg::apps::lulesh {

namespace {

// Logical addresses for the 26-direction exchange, in a range disjoint
// from the field addresses of lulesh.cpp.
constexpr LAddr kCommBase = static_cast<LAddr>(1) << 40;
LAddr sbuf3(int dir) { return kCommBase + 2 * static_cast<LAddr>(dir); }
LAddr rbuf3(int dir) { return kCommBase + 2 * static_cast<LAddr>(dir) + 1; }

struct Dir {
  int dx, dy, dz;
};

// The 26 non-zero directions, indexed deterministically.
std::vector<Dir> directions() {
  std::vector<Dir> dirs;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx != 0 || dy != 0 || dz != 0) dirs.push_back({dx, dy, dz});
      }
    }
  }
  return dirs;
}

int dir_index(const Dir& d) {
  int idx = 0;
  for (const Dir& c : directions()) {
    if (c.dx == d.dx && c.dy == d.dy && c.dz == d.dz) return idx;
    ++idx;
  }
  return -1;
}

}  // namespace

sim::SimGraph build_sim_graph(const SimGraphOptions& o) {
  const int volume = o.rx * o.ry * o.rz;
  const bool dist = volume > 1;
  SimEmitter::Options eopts;
  eopts.builder = o.builder;
  eopts.persistent = o.persistent;
  SimEmitter em(eopts);

  Config cfg = o.cfg;
  cfg.distributed = dist;
  // Arrays only carry the dependency structure; keep them small.
  cfg.npoints = std::max<std::int64_t>(cfg.npoints, 4L * cfg.tpl);
  Mesh mesh(cfg.npoints);

  // No-1D-halo topology: the dt allreduce is emitted, the 1D exchange is
  // replaced by the 26-neighbour model below.
  Halo halo;
  halo.left = -1;
  halo.right = -1;

  const int rank = o.rank;
  const int cz = rank / (o.rx * o.ry);
  const int cy = (rank / o.rx) % o.ry;
  const int cx = rank % o.rx;
  const auto dirs = directions();

  for (int it = 0; it < cfg.iterations; ++it) {
    if (!em.begin_iteration(static_cast<std::uint32_t>(it))) break;
    emit_iteration(em, mesh, cfg, static_cast<std::uint32_t>(it),
                   dist ? &halo : nullptr);
    if (!dist) {
      em.end_iteration();
      continue;
    }
    for (int di = 0; di < static_cast<int>(dirs.size()); ++di) {
      const Dir& d = dirs[static_cast<std::size_t>(di)];
      const int nx = cx + d.dx, ny = cy + d.dy, nz = cz + d.dz;
      if (nx < 0 || nx >= o.rx || ny < 0 || ny >= o.ry || nz < 0 ||
          nz >= o.rz) {
        continue;
      }
      const int peer = (nz * o.ry + ny) * o.rx + nx;
      // Message size class: face O(s^2), edge O(s), corner O(1).
      const int order = std::abs(d.dx) + std::abs(d.dy) + std::abs(d.dz);
      const std::uint64_t bytes =
          order == 1 ? 8ull * static_cast<std::uint64_t>(o.s) *
                           static_cast<std::uint64_t>(o.s)
          : order == 2 ? 8ull * static_cast<std::uint64_t>(o.s)
                       : 8ull;
      // The frontier block whose position update feeds this direction.
      const int fb = di % cfg.tpl;
      const int opposite = dir_index({-d.dx, -d.dy, -d.dz});
      std::vector<LDep> pack_deps{LDep::in(addr::x_block(fb)),
                                  LDep::out(sbuf3(di))};
      if (o.taskwait_around_comm) {
        // taskwait-equivalent: the pack waits for every L10 task, losing
        // early request posting (the +7% ablation).
        pack_deps.push_back(LDep::in(addr::ss_summary()));
      }
      em.compute("Pack3D", std::span<const LDep>(pack_deps),
                 0.2e-6 + static_cast<double>(bytes) * 0.1e-9, bytes,
                 [] {});
      em.send("Send3D", {LDep::in(sbuf3(di))}, nullptr, bytes, peer, di);
      em.recv("Recv3D", {LDep::out(rbuf3(di))}, nullptr, bytes, peer,
              opposite);
      // Unpacks join the end-of-iteration fan-in: the next iteration's dt
      // (and through it every loop) waits on the frontier data, exactly
      // like LULESH's ghost consumption.
      em.compute("Unpack3D",
                 {LDep::in(rbuf3(di)), LDep::inoutset(addr::ss_summary())},
                 0.2e-6 + static_cast<double>(bytes) * 0.1e-9, bytes, [] {});
    }
    em.end_iteration();
  }
  return em.take();
}

}  // namespace tdg::apps::lulesh
