#include "apps/lulesh/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace tdg::apps::lulesh::kernels {

namespace {
constexpr double kHgCoef = 3.0e-2;       // hourglass damping
constexpr double kVelocityCutoff = 1e-12;
constexpr double kQCoef = 2.0;           // quadratic viscosity coefficient
constexpr double kGamma = 1.4;           // EOS gamma
constexpr double kEMin = 1e-12;
constexpr double kVMin = 1e-6;
constexpr double kCfl = 0.4;
constexpr double kDtGrowth = 1.1;
constexpr double kDtMax = 1e-2;
}  // namespace

void stress_force(Mesh& m, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    m.f[u] = -(m.p[u] + m.q[u]) * m.arealg[u];
  }
}

void hourglass_force(Mesh& m, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    m.f[u] += kHgCoef * (m.x[u - 1] - 2.0 * m.x[u] + m.x[u + 1]) * m.mass[u];
  }
}

void acceleration(Mesh& m, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    m.xdd[u] = m.f[u] / m.mass[u];
  }
}

void boundary(Mesh& m, std::int64_t lo, std::int64_t hi, bool global_first,
              bool global_last) {
  if (global_first && lo <= 1 && 1 < hi) m.xdd[1] = 0.0;
  if (global_last && lo <= m.n && m.n < hi) {
    m.xdd[static_cast<std::size_t>(m.n)] = 0.0;
  }
}

void velocity(Mesh& m, std::int64_t lo, std::int64_t hi, double dt) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    double xdnew = m.xd[u] + m.xdd[u] * dt;
    if (std::fabs(xdnew) < kVelocityCutoff) xdnew = 0.0;
    m.xd[u] = xdnew;
  }
}

void position(Mesh& m, std::int64_t lo, std::int64_t hi, double dt) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    m.x[u] += m.xd[u] * dt;
  }
}

void kinematics(Mesh& m, std::int64_t lo, std::int64_t hi) {
  const double dx0 = m.dx0;
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double relv =
        std::max(kVMin, (m.x[u + 1] - m.x[u - 1]) / (2.0 * dx0));
    m.delv[u] = relv - m.v[u];
    m.v[u] = relv;
    m.arealg[u] = std::max(kVMin * dx0, relv * dx0);
  }
}

void viscosity(Mesh& m, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    const double compression = std::min(0.0, m.delv[u]);
    m.q[u] = kQCoef * compression * compression / std::max(m.v[u], kVMin);
  }
}

void eos(Mesh& m, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    m.e[u] = std::max(kEMin, m.e[u] - (m.p[u] + m.q[u]) * m.delv[u]);
    m.p[u] = (kGamma - 1.0) * m.e[u] / std::max(m.v[u], kVMin);
  }
}

void sound_speed(Mesh& m, std::int64_t lo, std::int64_t hi) {
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    m.ss[u] =
        std::sqrt(std::max(kEMin, kGamma * m.p[u] / std::max(m.v[u], kVMin)));
  }
}

double local_dt(const Mesh& m, std::int64_t lo, std::int64_t hi) {
  double dt = kDtMax;
  for (std::int64_t i = lo; i < hi; ++i) {
    const auto u = static_cast<std::size_t>(i);
    dt = std::min(dt, kCfl * m.arealg[u] / std::max(m.ss[u], kEMin));
  }
  return dt;
}

double apply_dt_bounds(double reduced, double prev_dt) {
  return std::min({reduced, prev_dt * kDtGrowth, kDtMax});
}

void clamp_left_ghost(Mesh& m) { m.x[0] = m.x[1]; }

void clamp_right_ghost(Mesh& m) {
  m.x[static_cast<std::size_t>(m.n) + 1] = m.x[static_cast<std::size_t>(m.n)];
}

}  // namespace tdg::apps::lulesh::kernels
