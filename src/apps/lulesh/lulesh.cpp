#include "apps/lulesh/lulesh.hpp"

#include <algorithm>

#include "apps/lulesh/kernels.hpp"

namespace tdg::apps::lulesh {

namespace {

namespace k = kernels;

// Logical dependency addresses: field id * stride + block index.
constexpr LAddr kStride = 1 << 20;
enum Field : LAddr {
  FX, FXD, FXDD, FF, FP, FQ, FE, FV, FDELV, FAREALG, FSS,
  FDT, FDTLOCAL, FDTRED, FSSUM,
  FGHOSTL, FGHOSTR, FSBUFL, FSBUFR, FRBUFL, FRBUFR,
  kAliasBase = 64,  // optimization (a) disabled: redundant twin addresses
};
constexpr LAddr A(Field f, int b = 0) {
  return static_cast<LAddr>(f) * kStride + static_cast<LAddr>(b);
}
constexpr LAddr Alias(Field f, int b = 0) {
  return (static_cast<LAddr>(f) + kAliasBase) * kStride +
         static_cast<LAddr>(b);
}

constexpr int kTagToRight = 1;  // message x[n] -> right neighbour
constexpr int kTagToLeft = 2;   // message x[1] -> left neighbour

/// Depend-clause builder; duplicates every item on an alias address when
/// optimization (a) is disabled (the Fig. 3 redundant-dependence pattern).
struct Deps {
  explicit Deps(bool minimized) : minimized_(minimized) {}
  Deps& in(Field f, int b = 0) { return add(f, b, DependType::In); }
  Deps& out(Field f, int b = 0) { return add(f, b, DependType::Out); }
  Deps& inout(Field f, int b = 0) { return add(f, b, DependType::InOut); }
  Deps& inoutset(Field f, int b = 0) {
    return add(f, b, DependType::InOutSet);
  }
  std::span<const LDep> span() const { return v_; }

 private:
  Deps& add(Field f, int b, DependType t) {
    v_.push_back(LDep{A(f, b), t});
    if (!minimized_) v_.push_back(LDep{Alias(f, b), t});
    return *this;
  }
  std::vector<LDep> v_;
  bool minimized_;
};

struct Blocking {
  std::int64_t n;
  int tpl;
  std::int64_t lo(int b) const {
    return 1 + n * b / tpl;
  }
  std::int64_t hi(int b) const { return 1 + n * (b + 1) / tpl; }
};

/// Reads of the position stencil x[lo-1 .. hi]: own block, neighbours,
/// ghosts at the partition frontier.
void x_stencil(Deps& d, int b, int tpl) {
  d.in(FX, b);
  if (b > 0) d.in(FX, b - 1); else d.in(FGHOSTL);
  if (b < tpl - 1) d.in(FX, b + 1); else d.in(FGHOSTR);
}

// Per-loop cost hints for the simulator (seconds and bytes per point).
// Each lulesh-mini loop stands for ~3 LULESH loops, hence the per-point
// figures are about 3x a single streaming kernel's.
constexpr double kSecsPerPoint = 150e-9;
constexpr std::uint64_t kBytesPerPoint = 350;

}  // namespace

namespace addr {
LAddr x_block(int b) { return A(FX, b); }
LAddr ss_summary() { return A(FSSUM); }
}  // namespace addr

void run_reference(Mesh& m, const Config& cfg) {
  const std::int64_t lo = 1, hi = m.n + 1;
  for (int it = 0; it < cfg.iterations; ++it) {
    m.dt = k::apply_dt_bounds(k::local_dt(m, lo, hi), m.dt);
    m.time += m.dt;
    k::stress_force(m, lo, hi);
    k::hourglass_force(m, lo, hi);
    k::acceleration(m, lo, hi);
    k::boundary(m, lo, hi, true, true);
    k::velocity(m, lo, hi, m.dt);
    k::position(m, lo, hi, m.dt);
    k::clamp_left_ghost(m);
    k::clamp_right_ghost(m);
    k::kinematics(m, lo, hi);
    k::viscosity(m, lo, hi);
    k::eos(m, lo, hi);
    k::sound_speed(m, lo, hi);
  }
}

void emit_iteration(Emitter& em, Mesh& mesh, const Config& cfg,
                    std::uint32_t, Halo* halo) {
  Mesh* m = &mesh;
  const Blocking blk{mesh.n, cfg.tpl};
  const bool min = cfg.minimized_deps;
  const int tpl = cfg.tpl;
  const bool global_first = halo == nullptr || halo->left < 0;
  const bool global_last = halo == nullptr || halo->right < 0;

  auto points = [&](int b) {
    return static_cast<double>(blk.hi(b) - blk.lo(b)) * cfg.sim_scale;
  };
  auto est = [&](int b) { return points(b) * kSecsPerPoint; };
  auto bytes = [&](int b) {
    return static_cast<std::uint64_t>(points(b)) * kBytesPerPoint;
  };

  // The dt reduction is a light streaming min over ss/arealg, not a full
  // physics loop: ~2 ns per point, 8 bytes per point.
  const double est_full =
      static_cast<double>(mesh.n) * cfg.sim_scale * 2e-9;
  const auto bytes_full = static_cast<std::uint64_t>(
      static_cast<double>(mesh.n) * cfg.sim_scale * 8.0);

  // ---- L0: dt constraint reduction (the Listing-1 collective) -------------
  if (cfg.distributed && halo != nullptr) {
    Halo* h = halo;
    {
      Deps d(min);
      d.in(FSSUM).out(FDTLOCAL);
      em.compute("CalcLocalDt", d.span(), est_full, bytes_full,
                 [m, h] { h->dt_local = k::local_dt(*m, 1, m->n + 1); });
    }
    {
      Deps d(min);
      d.in(FDTLOCAL).out(FDTRED);
      em.allreduce("Allreduce(dt)", d.span(), &halo->dt_local, &halo->dt_red,
                   1, mpi::Op::Min);
    }
    {
      Deps d(min);
      d.in(FDTRED).out(FDT);
      em.compute("CommitDt", d.span(), 1e-7, 0, [m, h] {
        m->dt = k::apply_dt_bounds(h->dt_red, m->dt);
        m->time += m->dt;
      });
    }
  } else {
    Deps d(min);
    d.in(FSSUM).out(FDT);
    em.compute("CalcDt", d.span(), est_full, bytes_full, [m] {
      m->dt = k::apply_dt_bounds(k::local_dt(*m, 1, m->n + 1), m->dt);
      m->time += m->dt;
    });
  }

  // ---- L1: stress force -----------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.in(FP, b).in(FQ, b).in(FAREALG, b).out(FF, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("StressForce", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::stress_force(*m, lo, hi); });
  }
  // ---- L2: hourglass force ----------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    x_stencil(d, b, tpl);
    d.inout(FF, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("HourglassForce", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::hourglass_force(*m, lo, hi); });
  }
  // ---- L3: acceleration --------------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.in(FF, b).out(FXDD, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("Acceleration", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::acceleration(*m, lo, hi); });
  }
  // ---- L4: boundary conditions ---------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.inout(FXDD, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("Boundary", d.span(), est(b) * 0.1, 0,
               [m, lo, hi, global_first, global_last] {
                 k::boundary(*m, lo, hi, global_first, global_last);
               });
  }
  // ---- L5: velocity ---------------------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.in(FXDD, b).in(FDT).inout(FXD, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("Velocity", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::velocity(*m, lo, hi, m->dt); });
  }
  // ---- L6: position ----------------------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.in(FXD, b).in(FDT).inout(FX, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("Position", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::position(*m, lo, hi, m->dt); });
  }

  // ---- frontier exchange (after the position update, Section 4.1) ----------
  if (cfg.distributed && halo != nullptr && halo->left >= 0) {
    Halo* h = halo;
    const int left = halo->left;
    {
      Deps d(min);
      d.in(FX, 0).out(FSBUFL);
      em.compute("PackLeft", d.span(), 1e-7, 8,
                 [m, h] { h->sbuf_l = m->x[1]; });
    }
    {
      Deps d(min);
      d.in(FSBUFL);
      em.send("SendLeft", d.span(), &halo->sbuf_l, sizeof(double), left,
              kTagToLeft);
    }
    {
      Deps d(min);
      d.out(FRBUFL);
      em.recv("RecvLeft", d.span(), &halo->rbuf_l, sizeof(double), left,
              kTagToRight);
    }
    {
      Deps d(min);
      d.in(FRBUFL).out(FGHOSTL);
      em.compute("UnpackLeft", d.span(), 1e-7, 8,
                 [m, h] { m->x[0] = h->rbuf_l; });
    }
  } else {
    Deps d(min);
    d.in(FX, 0).out(FGHOSTL);
    em.compute("ClampLeftGhost", d.span(), 1e-7, 8,
               [m] { k::clamp_left_ghost(*m); });
  }
  if (cfg.distributed && halo != nullptr && halo->right >= 0) {
    Halo* h = halo;
    const int right = halo->right;
    {
      Deps d(min);
      d.in(FX, tpl - 1).out(FSBUFR);
      em.compute("PackRight", d.span(), 1e-7, 8, [m, h] {
        h->sbuf_r = m->x[static_cast<std::size_t>(m->n)];
      });
    }
    {
      Deps d(min);
      d.in(FSBUFR);
      em.send("SendRight", d.span(), &halo->sbuf_r, sizeof(double), right,
              kTagToRight);
    }
    {
      Deps d(min);
      d.out(FRBUFR);
      em.recv("RecvRight", d.span(), &halo->rbuf_r, sizeof(double), right,
              kTagToLeft);
    }
    {
      Deps d(min);
      d.in(FRBUFR).out(FGHOSTR);
      em.compute("UnpackRight", d.span(), 1e-7, 8, [m, h] {
        m->x[static_cast<std::size_t>(m->n) + 1] = h->rbuf_r;
      });
    }
  } else {
    Deps d(min);
    d.in(FX, tpl - 1).out(FGHOSTR);
    em.compute("ClampRightGhost", d.span(), 1e-7, 8,
               [m] { k::clamp_right_ghost(*m); });
  }

  // ---- L7: kinematics --------------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    x_stencil(d, b, tpl);
    d.inout(FV, b).out(FDELV, b).out(FAREALG, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("Kinematics", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::kinematics(*m, lo, hi); });
  }
  // ---- L8: artificial viscosity --------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.in(FDELV, b).in(FV, b).out(FQ, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("Viscosity", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::viscosity(*m, lo, hi); });
  }
  // ---- L9: EOS ----------------------------------------------------------------------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.in(FDELV, b).in(FQ, b).inout(FE, b).inout(FP, b);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("EOS", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::eos(*m, lo, hi); });
  }
  // ---- L10: sound speed (inoutset fan-in for the next dt reduction) ----------
  for (int b = 0; b < tpl; ++b) {
    Deps d(min);
    d.in(FP, b).in(FE, b).in(FV, b).out(FSS, b).inoutset(FSSUM);
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    em.compute("SoundSpeed", d.span(), est(b), bytes(b),
               [m, lo, hi] { k::sound_speed(*m, lo, hi); });
  }
}

void run_taskbased(Runtime& rt, Mesh& mesh, const Config& cfg,
                   bool persistent) {
  RuntimeEmitter::Options opts;
  opts.persistent = persistent;
  RuntimeEmitter em(rt, opts);
  for (int it = 0; it < cfg.iterations; ++it) {
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      emit_iteration(em, mesh, cfg, static_cast<std::uint32_t>(it), nullptr);
    }
    em.end_iteration();
  }
  rt.taskwait();
}

void run_parallel_for(Runtime& rt, Mesh& m, const Config& cfg) {
  namespace kk = kernels;
  const std::int64_t lo = 1, hi = m.n + 1;
  auto no_deps = [](int, std::int64_t, std::int64_t, DependList&) {};
  auto loop = [&](auto kernel) {
    rt.taskloop(lo, hi, cfg.tpl, no_deps, kernel);
    rt.taskwait();  // the BSP barrier after every parallel-for
  };
  for (int it = 0; it < cfg.iterations; ++it) {
    m.dt = kk::apply_dt_bounds(kk::local_dt(m, lo, hi), m.dt);
    m.time += m.dt;
    loop([&m](std::int64_t l, std::int64_t h) { kk::stress_force(m, l, h); });
    loop([&m](std::int64_t l, std::int64_t h) {
      kk::hourglass_force(m, l, h);
    });
    loop([&m](std::int64_t l, std::int64_t h) { kk::acceleration(m, l, h); });
    loop([&m](std::int64_t l, std::int64_t h) {
      kk::boundary(m, l, h, true, true);
    });
    const double dt = m.dt;
    loop([&m, dt](std::int64_t l, std::int64_t h) {
      kk::velocity(m, l, h, dt);
    });
    loop([&m, dt](std::int64_t l, std::int64_t h) {
      kk::position(m, l, h, dt);
    });
    kk::clamp_left_ghost(m);
    kk::clamp_right_ghost(m);
    loop([&m](std::int64_t l, std::int64_t h) { kk::kinematics(m, l, h); });
    loop([&m](std::int64_t l, std::int64_t h) { kk::viscosity(m, l, h); });
    loop([&m](std::int64_t l, std::int64_t h) { kk::eos(m, l, h); });
    loop([&m](std::int64_t l, std::int64_t h) { kk::sound_speed(m, l, h); });
  }
}

void run_distributed(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                     Mesh& mesh, const Config& cfg, bool persistent) {
  Config dcfg = cfg;
  dcfg.distributed = true;
  Halo halo;
  halo.left = comm.rank() > 0 ? comm.rank() - 1 : -1;
  halo.right = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
  RuntimeEmitter::Options opts;
  opts.persistent = persistent;
  RuntimeEmitter em(rt, comm, poller, opts);
  for (int it = 0; it < dcfg.iterations; ++it) {
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      emit_iteration(em, mesh, dcfg, static_cast<std::uint32_t>(it), &halo);
    }
    em.end_iteration();
  }
  rt.taskwait();
}

void run_distributed(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                     Mesh& mesh, const Config& cfg, bool persistent,
                     RecoveryMode recovery) {
  const bool shrink = recovery == RecoveryMode::ShrinkRedistribute;
  TDG_REQUIRE(!(shrink && persistent),
              "lulesh: shrink recovery cannot replay a persistent graph "
              "(the ring topology changes shape)");
  Config dcfg = cfg;
  dcfg.distributed = true;
  Halo halo;
  halo.left = comm.rank() > 0 ? comm.rank() - 1 : -1;
  halo.right = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
  RuntimeEmitter::Options opts;
  opts.persistent = persistent;
  opts.recovery = recovery;
  // No cross-rank reroute for the halo ring: an orphaned in-flight receive
  // completes locally (stale ghost, idempotency contract), and the *next*
  // iteration's topology read below re-points the exchange structurally.
  RuntimeEmitter em(rt, comm, poller, opts);
  for (int it = 0; it < dcfg.iterations; ++it) {
    // Recovery-aware variant: drain at every iteration boundary. In
    // poison mode this is what makes a death cascade *terminate* — the
    // taskwait surfaces the poisoning, the rank exits, and peers whose
    // receives now point at a Finished rank fail fast in turn instead of
    // waiting on sends a poisoned graph will never run. In shrink mode
    // the quiesced graph is what lets the topology be re-read safely.
    if (it > 0) rt.taskwait();
    if (shrink) {
      // Re-read the ring from the failure detector: a dead neighbour heals
      // into the nearest survivor, or into the boundary ghost clamp when
      // the chain ends. A barrier is unnecessary — ranks may disagree
      // transiently, and the orphaned receives complete locally.
      const int old_left = halo.left;
      const int old_right = halo.right;
      halo.left = comm.nearest_alive(comm.rank(), -1);
      halo.right = comm.nearest_alive(comm.rank(), +1);
      // Healing-skew catch-up: detection can land between two ranks'
      // boundary reads, so the new neighbour may have healed one
      // iteration earlier and already posted a receive from us — while
      // our send that iteration went to the dead rank. Without a
      // catch-up that receive gates its rank's dt allreduce and the
      // whole ring deadlocks one iteration apart. The per-iteration
      // drain keeps live ranks within one iteration of each other, so a
      // single send of the current (stale-tolerant) boundary closes the
      // gap; if the peer healed in the same iteration the extra message
      // is simply never consumed.
      if (it > 0 && halo.right != old_right && halo.right >= 0) {
        comm.wait(comm.isend(&halo.sbuf_r, sizeof(double), halo.right,
                             kTagToRight));
      }
      if (it > 0 && halo.left != old_left && halo.left >= 0) {
        comm.wait(comm.isend(&halo.sbuf_l, sizeof(double), halo.left,
                             kTagToLeft));
      }
    }
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      emit_iteration(em, mesh, dcfg, static_cast<std::uint32_t>(it), &halo);
    }
    em.end_iteration();
  }
  rt.taskwait();
}

}  // namespace tdg::apps::lulesh
