#include "apps/taskbench/taskbench.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/error.hpp"

namespace tdg::apps::taskbench {

namespace {

// ---------------------------------------------------------------------------
// Deterministic per-task randomness (splitmix64 over a mixed key): the same
// (seed, step, point) always draws the same neighbours, so random_nearest
// emits identical clauses on every engine, every iteration and every replay.
// ---------------------------------------------------------------------------

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t task_hash(std::uint64_t seed, int step, int point, int salt) {
  std::uint64_t h = mix64(seed ^ (static_cast<std::uint64_t>(step) << 32 |
                                  static_cast<std::uint32_t>(point)));
  return mix64(h ^ static_cast<std::uint64_t>(salt));
}

/// Uniform draw in [0, 1).
double hash01(std::uint64_t seed, int step, int point, int salt) {
  return static_cast<double>(task_hash(seed, step, point, salt) >> 11) *
         0x1.0p-53;
}

int ceil_log2(int n) {
  int l = 0;
  while ((1 << l) < n) ++l;
  return l;
}

// ---------------------------------------------------------------------------
// Dependency addressing: double-buffered per-point slots. Step s writes
// parity s%2 and reads parity (s-1)%2, so a writer's WAR edges point at the
// previous step's readers — the real dependence structure of a
// double-buffered timestep loop, on both engines.
// ---------------------------------------------------------------------------

LAddr slot(int point, int parity) {
  return static_cast<LAddr>(point) * 2 + static_cast<LAddr>(parity);
}

/// The collective coupling slot (outside every point slot).
LAddr coll_slot(const Config& cfg) {
  return static_cast<LAddr>(cfg.width) * 2;
}

bool collective_step(const Config& cfg, int step) {
  return cfg.collective_period > 0 && step > 0 &&
         step % cfg.collective_period == 0;
}

// ---------------------------------------------------------------------------
// Concrete kernels. All take ~task_seconds wall time; they differ in what
// they do to the machine while burning it.
// ---------------------------------------------------------------------------

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Busy-wait compute kernel (grain 0 returns immediately).
void spin_for(double seconds, double* sink) {
  if (seconds <= 0) return;
  const double deadline = now_seconds() + seconds;
  double acc = *sink;
  do {
    for (int i = 0; i < 64; ++i) acc = acc * 1.0000000001 + 1e-9;
  } while (now_seconds() < deadline);
  *sink = acc;
}

/// Stream a thread-local scratch buffer until the grain elapses (at least
/// one pass): every pass touches `bytes` of memory, churning the caches.
void stream_for(double seconds, std::uint64_t bytes, double* sink) {
  thread_local std::vector<std::uint64_t> scratch;
  const std::size_t words =
      std::max<std::size_t>(static_cast<std::size_t>(bytes) / 8, 64);
  if (scratch.size() < words) scratch.resize(words, 1);
  const double deadline = now_seconds() + seconds;
  std::uint64_t acc = 0;
  do {
    for (std::size_t i = 0; i < words; i += 8) {
      acc += scratch[i];
      scratch[i] = acc;
    }
  } while (now_seconds() < deadline);
  *sink += static_cast<double>(acc & 0xff) * 1e-12;
}

}  // namespace

// ---------------------------------------------------------------------------
// Patterns
// ---------------------------------------------------------------------------

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::Trivial: return "trivial";
    case Pattern::NoComm: return "no_comm";
    case Pattern::Stencil1D: return "stencil_1d";
    case Pattern::Nearest: return "nearest";
    case Pattern::Spread: return "spread";
    case Pattern::RandomNearest: return "random_nearest";
    case Pattern::Fft: return "fft";
    case Pattern::Tree: return "tree";
    case Pattern::Dom: return "dom";
  }
  return "?";
}

std::span<const Pattern> all_patterns() {
  static constexpr Pattern kAll[] = {
      Pattern::Trivial, Pattern::NoComm,        Pattern::Stencil1D,
      Pattern::Nearest, Pattern::Spread,        Pattern::RandomNearest,
      Pattern::Fft,     Pattern::Tree,          Pattern::Dom,
  };
  return kAll;
}

std::optional<Pattern> pattern_from_name(std::string_view name) {
  for (Pattern p : all_patterns()) {
    if (name == pattern_name(p)) return p;
  }
  return std::nullopt;
}

void dependencies(const Config& cfg, int step, int point,
                  std::vector<int>& out) {
  out.clear();
  TDG_REQUIRE(cfg.width > 0 && cfg.steps > 0, "taskbench: empty grid");
  TDG_REQUIRE(point >= 0 && point < cfg.width, "taskbench: point range");
  if (step <= 0) return;
  const int w = cfg.width;
  auto push = [&](int j) {
    if (j >= 0 && j < w) out.push_back(j);
  };
  switch (cfg.pattern) {
    case Pattern::Trivial:
      break;
    case Pattern::NoComm:
      push(point);
      break;
    case Pattern::Stencil1D:
      push(point - 1);
      push(point);
      push(point + 1);
      break;
    case Pattern::Nearest: {
      const int r = std::max(1, cfg.radix / 2);
      for (int j = point - r; j <= point + r; ++j) push(j);
      break;
    }
    case Pattern::Spread: {
      const int gap = std::max(1, w / std::max(1, cfg.radix));
      for (int k = 0; k < std::max(1, cfg.radix); ++k) {
        push((point + k * gap + step) % w);
      }
      break;
    }
    case Pattern::RandomNearest: {
      const int r = std::max(1, cfg.radix / 2);
      push(point);  // stays connected even when every draw misses
      for (int j = point - r; j <= point + r; ++j) {
        if (j == point) continue;
        if (task_hash(cfg.seed, step, point, j - point + 64) & 1) push(j);
      }
      break;
    }
    case Pattern::Fft: {
      const int partner = point ^ (1 << ((step - 1) % ceil_log2(w)));
      push(point);
      push(partner);
      break;
    }
    case Pattern::Tree: {
      // Binomial fan-in restarting every ceil_log2(w) steps: at depth d,
      // points aligned to 2^(d+1) absorb their 2^d sibling.
      const int d = (step - 1) % ceil_log2(w);
      push(point);
      if (point % (1 << (d + 1)) == 0) push(point + (1 << d));
      break;
    }
    case Pattern::Dom:
      push(point - 1);
      push(point);
      break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

// ---------------------------------------------------------------------------
// Kernels / cost accounting
// ---------------------------------------------------------------------------

double task_seconds(const Config& cfg, int step, int point) {
  const double grain = cfg.grain_us * 1e-6;
  if (cfg.kernel != Kernel::Imbalanced) return grain;
  const double spread = std::max(1.0, cfg.imbalance);
  return grain * (1.0 + (spread - 1.0) * hash01(cfg.seed, step, point, 7));
}

double total_task_seconds(const Config& cfg) {
  double per_iter = 0;
  for (int s = 0; s < cfg.steps; ++s) {
    for (int i = 0; i < cfg.width; ++i) per_iter += task_seconds(cfg, s, i);
  }
  return per_iter * cfg.iterations;
}

std::uint64_t tasks_per_iteration(const Config& cfg) {
  std::uint64_t n = static_cast<std::uint64_t>(cfg.width) * cfg.steps;
  for (int s = 0; s < cfg.steps; ++s) n += collective_step(cfg, s);
  return n;
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

Workspace::Workspace(const Config& cfg)
    : state(static_cast<std::size_t>(cfg.width) * 2, 0.0) {}

double Workspace::checksum() const {
  double sum = 0;
  for (double v : state) sum += v;
  return sum;
}

void emit(Emitter& em, const Config& cfg, Workspace* ws) {
  TDG_REQUIRE(cfg.width > 0 && cfg.steps > 0 && cfg.iterations > 0,
              "taskbench: empty grid");
  TDG_REQUIRE(!(em.concrete() && ws == nullptr),
              "taskbench: concrete emission needs a Workspace");
  const char* label = pattern_name(cfg.pattern);
  std::vector<int> deps;
  std::vector<LDep> ldeps;
  for (int it = 0; it < cfg.iterations; ++it) {
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      for (int s = 0; s < cfg.steps; ++s) {
        const int wpar = s % 2;
        const int rpar = 1 - wpar;
        const bool coll = collective_step(cfg, s);
        if (coll) {
          // The collective reads the previous step's first slot and every
          // task of this step reads its result: a per-period rank-coupling
          // barrier, like the paper apps' dt allreduce.
          em.allreduce(
              "taskbench::allreduce",
              {LDep::in(slot(0, rpar)), LDep::inout(coll_slot(cfg))},
              ws ? &ws->coll_in : nullptr, ws ? &ws->coll_out : nullptr, 1,
              mpi::Op::Sum);
        }
        for (int i = 0; i < cfg.width; ++i) {
          dependencies(cfg, s, i, deps);
          ldeps.clear();
          for (int j : deps) ldeps.push_back(LDep::in(slot(j, rpar)));
          if (coll) ldeps.push_back(LDep::in(coll_slot(cfg)));
          ldeps.push_back(LDep::out(slot(i, wpar)));
          const double secs = task_seconds(cfg, s, i);
          std::function<void()> body;
          if (em.concrete()) {
            // The kernel touches exactly what the clause declares: reads
            // the dependence slots, writes its own — any missing ordering
            // is a determinacy race the verifier (and the checksum) sees.
            body = [ws, &state = ws->state, cfg, s, i, wpar, rpar, secs,
                    reads = deps] {
              double acc = 0;
              for (int j : reads) acc += state[slot(j, rpar)];
              double v = acc * 0.25 + hash01(cfg.seed, s, i, 3) + 1.0;
              switch (cfg.kernel) {
                case Kernel::Compute:
                case Kernel::Imbalanced:
                  spin_for(secs, &v);
                  break;
                case Kernel::Memory:
                  stream_for(secs, cfg.kernel_bytes, &v);
                  break;
              }
              state[slot(i, wpar)] = v;
              ws->executed.fetch_add(1, std::memory_order_relaxed);
            };
          }
          em.compute(label, std::span<const LDep>(ldeps),
                     secs * cfg.sim_scale,
                     static_cast<std::uint64_t>(
                         static_cast<double>(cfg.kernel == Kernel::Memory
                                                 ? cfg.kernel_bytes
                                                 : 2048) *
                         cfg.sim_scale),
                     std::move(body));
        }
      }
    }
    em.end_iteration();
  }
}

sim::SimGraph build_sim_graph(const Config& cfg,
                              sim::SimGraphBuilder::Options builder_opts,
                              bool persistent) {
  SimEmitter em({builder_opts, persistent});
  emit(em, cfg, nullptr);
  return em.take();
}

RunResult run_taskbased(Runtime& rt, const Config& cfg, bool persistent) {
  TDG_REQUIRE(cfg.collective_period == 0,
              "taskbench: collectives need a distributed emitter");
  RuntimeEmitter::Options opts;
  opts.persistent = persistent;
  RuntimeEmitter em(rt, opts);
  Workspace ws(cfg);
  emit(em, cfg, &ws);
  rt.taskwait();
  return RunResult{ws.executed.load(std::memory_order_relaxed),
                   ws.checksum()};
}

}  // namespace tdg::apps::taskbench
