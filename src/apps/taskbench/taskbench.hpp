// taskbench: a Task-Bench-style parameterized workload matrix (Slaughter et
// al.'s METG methodology, cited by bench_metg). The paper evaluates
// discovery cost on three fixed applications; this generator spans a
// *matrix* of dependence patterns x kernels x grains so the discovery-vs-
// execution crossover can be located per graph shape, not per app.
//
// A workload is a width x steps grid of tasks: every point emits one task
// per step, depending on a pattern-defined subset of the previous step's
// points. Dependences are expressed as OpenMP depend clauses over
// double-buffered per-point slots (step s writes parity s%2, reads parity
// (s-1)%2), so the generator drives BOTH engines through the shared
// Emitter: the real runtime (kernels execute, verifier applies) and the
// SimGraphBuilder/ClusterSim (cost-model attributes only, 8..4096 ranks).
//
// Patterns (our deterministic definitions; shapes follow Task Bench's
// core.cc, not byte-for-byte):
//   trivial         no dependences at all (embarrassingly parallel)
//   no_comm         each point depends on itself only (width chains)
//   stencil_1d      {i-1, i, i+1} clipped to the edge
//   nearest         window [i-radix/2, i+radix/2] clipped
//   spread          radix points strided width/radix apart, shifting by
//                   one point per step (wraps around)
//   random_nearest  seeded random subset of the nearest window + self
//   fft             butterfly: {i, i ^ 2^((s-1) mod ceil_log2 w)}
//   tree            binomial fan-in: points aligned to 2^(d+1) absorb
//                   their 2^d sibling, d = (s-1) mod ceil_log2 w
//   dom             wavefront: {i-1, i} (diagonal dominance sweep)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "apps/common/emitter.hpp"
#include "core/runtime.hpp"
#include "sim/graph.hpp"

namespace tdg::apps::taskbench {

enum class Pattern : std::uint8_t {
  Trivial,
  NoComm,
  Stencil1D,
  Nearest,
  Spread,
  RandomNearest,
  Fft,
  Tree,
  Dom,
};

/// Kernel families exercising different machine bottlenecks at equal grain.
enum class Kernel : std::uint8_t {
  Compute,     ///< pure busy work, cache-resident
  Memory,      ///< streams `kernel_bytes` per task (cache churn)
  Imbalanced,  ///< per-task grain spread over [1, imbalance] x grain_us
};

struct Config {
  Pattern pattern = Pattern::Stencil1D;
  Kernel kernel = Kernel::Compute;
  int width = 16;      ///< points (tasks per step)
  int steps = 8;       ///< steps per iteration
  int iterations = 1;  ///< outer iterations (persistent replays these)
  int radix = 3;       ///< fan-in of nearest / spread / random_nearest
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< random_nearest draw
  double grain_us = 0.0;     ///< nominal kernel grain (0 = dataflow only)
  double imbalance = 4.0;    ///< Imbalanced: max/min grain ratio
  std::uint64_t kernel_bytes = 1 << 15;  ///< Memory: per-task working set
  /// Every `collective_period` steps an allreduce gates the next step
  /// (rank-coupling for multi-rank simulation; 0 = none). Real-runtime
  /// emission requires 0 unless the emitter has a communicator.
  int collective_period = 0;
  double sim_scale = 1.0;  ///< multiplies cost hints fed to the simulator
};

const char* pattern_name(Pattern p);
std::optional<Pattern> pattern_from_name(std::string_view name);
/// All nine patterns, in enum order.
std::span<const Pattern> all_patterns();

/// Dependences of task (step, point): the previous-step points it reads.
/// Empty for step 0. Sorted, unique, within [0, cfg.width).
void dependencies(const Config& cfg, int step, int point,
                  std::vector<int>& out);

/// Nominal kernel seconds of task (step, point); the Imbalanced kernel
/// spreads grains deterministically, all others are uniform at grain_us.
double task_seconds(const Config& cfg, int step, int point);

/// Sum of task_seconds over the whole run (all iterations): the ideal-work
/// numerator of the METG efficiency metric.
double total_task_seconds(const Config& cfg);

/// User tasks one iteration emits (collective fan-in included).
std::uint64_t tasks_per_iteration(const Config& cfg);

/// Concrete state for real-runtime runs: double-buffered per-point slots
/// the kernels read/write exactly as the depend clauses declare, plus an
/// execution counter. The checksum is scheduling-independent iff the
/// discovered TDG orders every conflicting access pair — which is what
/// makes taskbench a good TDG_VERIFY=strict subject.
struct Workspace {
  explicit Workspace(const Config& cfg);
  std::vector<double> state;  ///< width * 2 slots (double buffer)
  double coll_in = 0, coll_out = 0;  ///< allreduce staging (distributed)
  std::atomic<std::uint64_t> executed{0};
  double checksum() const;
};

/// Emit the full workload (all iterations, bracketed through the emitter's
/// begin/end_iteration so persistent capture works on both engines). `ws`
/// backs concrete kernels and may be null for model-only emitters.
void emit(Emitter& em, const Config& cfg, Workspace* ws);

/// Model-only convenience: the pattern's SimGraph (persistent = capture
/// one iteration for the simulator to replay).
sim::SimGraph build_sim_graph(const Config& cfg,
                              sim::SimGraphBuilder::Options builder_opts,
                              bool persistent);

struct RunResult {
  std::uint64_t tasks_executed = 0;  ///< concrete kernel executions
  double checksum = 0;               ///< order-independent state digest
};

/// Run the workload concretely on the real runtime (persistent = wrap the
/// iterations in a PersistentRegion). Blocks until drained.
RunResult run_taskbased(Runtime& rt, const Config& cfg, bool persistent);

}  // namespace tdg::apps::taskbench
