// MPI <-> tasking-runtime interoperability (Sections 1, 4): MPI requests
// posted inside OpenMP tasks complete detach events when the runtime polls
// at scheduling points, letting communication overlap task execution.
//
// Failure interop (DESIGN.md "Failure model"): a comm-aware poller also
// drives the MPI layer's resilience machinery (heartbeats, retransmits,
// failure detection) from the same polling hook, mirrors the injected-
// fault and reliable-delivery counters into runtime metrics, and turns a
// failed request into one of three outcomes — reroute to a survivor,
// local completion of an idempotent task, or graph poisoning with
// tdg::RankFailedError.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/metrics.hpp"
#include "core/runtime.hpp"
#include "core/telemetry.hpp"
#include "mpi/mpi.hpp"

namespace tdg::mpi {

/// Record of one completed tracked request, for the paper's communication
/// metrics: c(r) = completion - post; overlap = work concurrent with it.
struct RequestSpan {
  std::uint64_t post_ns = 0;
  std::uint64_t complete_ns = 0;
  bool collective = false;
  double seconds() const {
    return static_cast<double>(complete_ns - post_ns) * 1e-9;
  }
};

/// How a tracked request behaves when it fails (its peer rank died).
struct TrackOpts {
  bool collective = false;
  /// Recovery callback: given the dead rank, post and return a replacement
  /// request (re-routed to a survivor). Return an invalid Request to
  /// decline; the poller then falls through to `fulfill_on_giveup` /
  /// poisoning. Called from the polling hook — must not block.
  std::function<Request(int failed_rank)> on_peer_failed;
  /// When recovery is declined and the detach task is marked idempotent
  /// (TaskOpts::idempotent), fulfill the event anyway: the task's shard
  /// completes locally with whatever data it has, instead of poisoning
  /// its dependents. The idempotency contract makes re-execution or
  /// partial data safe.
  bool fulfill_on_giveup = false;
};

/// Per-rank poller: binds MPI requests to detach events and probes them at
/// runtime scheduling points. Thread-safe; typical use:
///
///   RequestPoller poller(rt, comm);       // installs the polling hook
///   ... inside a task:
///   Event* ev = rt.create_event();        // attach via TaskOpts::detach
///   poller.complete_on_event(comm.isend(...), ev);
///
/// The comm-aware constructor additionally drives Comm::poll() (heartbeat
/// publication, retransmissions, failure detection) from the hook and
/// mirrors the universe's fault counters into the runtime metrics as
/// comm.drops_injected / comm.kills_injected / comm.retransmits /
/// comm.dup_suppressed / comm.reroutes and the universe.ranks_failed
/// gauge.
class RequestPoller {
 public:
  explicit RequestPoller(Runtime& rt) : RequestPoller(rt, nullptr) {}
  RequestPoller(Runtime& rt, Comm& comm) : RequestPoller(rt, &comm) {}
  ~RequestPoller() {
    if (rt_ != nullptr) {
      // Token-based uninstall: only clears the hook if it is still ours —
      // a second poller installed after us must keep its hook.
      rt_->clear_polling_hook(hook_token_);
      rt_->watchdog().remove_diagnostic(diag_token_);
    }
  }
  RequestPoller(const RequestPoller&) = delete;
  RequestPoller& operator=(const RequestPoller&) = delete;

  /// Fulfill `ev` once `r` completes. May be called from any task.
  void complete_on_event(Request r, Event* ev, bool collective = false) {
    TrackOpts opts;
    opts.collective = collective;
    complete_on_event(std::move(r), ev, std::move(opts));
  }
  /// Fulfill `ev` once `r` completes, with failure handling per `opts`.
  void complete_on_event(Request r, Event* ev, TrackOpts opts);

  /// Probe all tracked requests once (also called by the runtime hook).
  void poll();

  /// Spans of completed tracked requests (read after quiescence).
  std::vector<RequestSpan> completed_spans() const;
  std::size_t pending() const;

  /// Append this poller's pending requests — plus, when comm-aware, the
  /// per-rank detector status / heartbeat ages and the injected-fault
  /// counters — to a watchdog report.
  void diagnostic(std::string& out) const;

 private:
  struct Tracked {
    Request req;
    Event* ev;
    TrackOpts opts;
    RequestSpan span;
  };

  RequestPoller(Runtime& rt, Comm* comm);

  /// Record a completed span into the runtime metrics registry and, when
  /// tracing is on, a CommRecord into the profiler's comm ring.
  void record_metrics(const Tracked& t);
  /// Push a telemetry sample if the sampling period elapsed (poll-driven).
  void maybe_sample_telemetry();
  /// Resolve a failed request: reroute, complete locally, or poison.
  void handle_failed(Tracked t);
  /// Mirror the universe's fault/reliability counters into rt metrics
  /// (delta since the last sync; time-gated).
  void sync_comm_metrics();

  Runtime* rt_;
  Comm* comm_;
  Runtime::PollingHookToken hook_token_;
  std::uint64_t diag_token_ = 0;
  MetricsRegistry::Id m_requests_, m_collectives_, m_bytes_, m_wait_ns_;
  MetricsRegistry::Id m_drops_, m_kills_, m_retransmits_, m_dup_sup_,
      m_reroutes_, m_ranks_failed_;
  // Live telemetry (comm-aware pollers with TDG_TELEMETRY on): a periodic
  // sample of this rank's counters, pushed from the polling hook into a
  // ring registered with the process-wide TelemetryHub.
  TelemetryConfig telem_cfg_;
  std::shared_ptr<TelemetryRing> telem_ring_;
  std::atomic<std::uint64_t> telem_last_ns_{0};
  MetricsRegistry::Id m_exec_tasks_;
  mutable std::mutex mu_;
  std::vector<Tracked> pending_;
  std::vector<RequestSpan> done_;
  std::mutex sync_mu_;  // guards the counter baselines below
  std::uint64_t last_sync_ns_ = 0;
  FaultStats fault_base_;
  ReliableStats rel_base_;
  int ranks_failed_base_ = 0;
  // Snapshot at construction (= watchdog arming): the hang report shows
  // deltas against these, so it reads "what was injected during *this*
  // wait", not lifetime totals.
  FaultStats diag_fault_base_;
  ReliableStats diag_rel_base_;
};

}  // namespace tdg::mpi
