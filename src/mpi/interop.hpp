// MPI <-> tasking-runtime interoperability (Sections 1, 4): MPI requests
// posted inside OpenMP tasks complete detach events when the runtime polls
// at scheduling points, letting communication overlap task execution.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/metrics.hpp"
#include "core/runtime.hpp"
#include "mpi/mpi.hpp"

namespace tdg::mpi {

/// Record of one completed tracked request, for the paper's communication
/// metrics: c(r) = completion - post; overlap = work concurrent with it.
struct RequestSpan {
  std::uint64_t post_ns = 0;
  std::uint64_t complete_ns = 0;
  bool collective = false;
  double seconds() const {
    return static_cast<double>(complete_ns - post_ns) * 1e-9;
  }
};

/// Per-rank poller: binds MPI requests to detach events and probes them at
/// runtime scheduling points. Thread-safe; typical use:
///
///   RequestPoller poller(rt);             // installs the polling hook
///   ... inside a task:
///   Event* ev = rt.create_event();        // attach via TaskOpts::detach
///   poller.complete_on_event(comm.isend(...), ev);
class RequestPoller {
 public:
  explicit RequestPoller(Runtime& rt) : rt_(&rt) {
    hook_token_ = rt_->set_polling_hook([this] { poll(); });
    diag_token_ = rt_->watchdog().add_diagnostic(
        [this](std::string& out) { diagnostic(out); });
    // Registration is idempotent by name, so successive pollers on one
    // runtime (tests create several) accumulate into the same counters.
    MetricsRegistry& m = rt_->metrics();
    m_requests_ = m.counter("comm.requests");
    m_collectives_ = m.counter("comm.collectives");
    m_bytes_ = m.counter("comm.bytes");
    m_wait_ns_ = m.histogram("comm.wait_ns");
  }
  ~RequestPoller() {
    if (rt_ != nullptr) {
      // Token-based uninstall: only clears the hook if it is still ours —
      // a second poller installed after us must keep its hook.
      rt_->clear_polling_hook(hook_token_);
      rt_->watchdog().remove_diagnostic(diag_token_);
    }
  }
  RequestPoller(const RequestPoller&) = delete;
  RequestPoller& operator=(const RequestPoller&) = delete;

  /// Fulfill `ev` once `r` completes. May be called from any task.
  void complete_on_event(Request r, Event* ev, bool collective = false);

  /// Probe all tracked requests once (also called by the runtime hook).
  void poll();

  /// Spans of completed tracked requests (read after quiescence).
  std::vector<RequestSpan> completed_spans() const;
  std::size_t pending() const;

  /// Append this poller's pending requests to a watchdog report
  /// ("pending MPI request: irecv src=1 tag=7 bytes=8").
  void diagnostic(std::string& out) const;

 private:
  struct Tracked {
    Request req;
    Event* ev;
    RequestSpan span;
  };

  /// Record a completed span into the runtime metrics registry.
  void record_metrics(const Tracked& t);

  Runtime* rt_;
  Runtime::PollingHookToken hook_token_;
  std::uint64_t diag_token_ = 0;
  MetricsRegistry::Id m_requests_, m_collectives_, m_bytes_, m_wait_ns_;
  mutable std::mutex mu_;
  std::vector<Tracked> pending_;
  std::vector<RequestSpan> done_;
};

}  // namespace tdg::mpi
