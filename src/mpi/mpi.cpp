#include "mpi/mpi.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <thread>
#include <unordered_map>

#include "core/common.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"

namespace tdg::mpi {
namespace detail {

namespace {
double reduce_one(Op op, double a, double b) {
  switch (op) {
    case Op::Min:
      return std::min(a, b);
    case Op::Max:
      return std::max(a, b);
    case Op::Sum:
      return a + b;
  }
  return a;
}

// Counter-based splitmix64: stateless hash of (seed, rank, sequence), so
// fault decisions depend only on a rank's own send sequence — deterministic
// across thread interleavings.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

// One in-flight message, staged (eager) or referencing the sender's buffer
// (rendezvous, completed by the receiver at match time).
struct Message {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  const void* src_buf = nullptr;      // rendezvous only
  std::vector<std::byte> staged;      // eager only
  std::shared_ptr<ReqState> sreq;     // rendezvous sender request
  std::uint64_t deliver_at_ns = 0;    // fault injection: matchable when due
  bool delayed = false;               // counted in World::delayed_count
};

struct PostedRecv {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  void* buf = nullptr;
  std::shared_ptr<ReqState> rreq;
};

// Per-destination-rank matching queues (an MPI matching engine).
struct Mailbox {
  std::mutex mu;
  std::deque<Message> unexpected;
  std::deque<PostedRecv> posted;
};

struct CollectiveSlot {
  int contributed = 0;
  Op op = Op::Sum;
  std::size_t count = 0;
  /// Contributions keyed by rank: the reduction is applied in rank order
  /// at completion, so floating-point results are deterministic across
  /// runs regardless of arrival order.
  std::vector<std::vector<double>> by_rank;
  struct Out {
    double* buf;
    std::shared_ptr<ReqState> req;
  };
  std::vector<Out> outs;
};

struct World {
  int nranks = 0;
  std::size_t eager_threshold = 0;
  double default_wait_deadline = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::mutex coll_mu;
  std::unordered_map<std::uint64_t, CollectiveSlot> collectives;

  // --- fault injection -----------------------------------------------------
  FaultPlan faults;
  bool faults_active = false;
  /// Messages currently held past their send time; while non-zero, request
  /// polling drives Mailbox progress so due messages get delivered.
  std::atomic<int> delayed_count{0};
  std::vector<std::uint64_t> fault_seq;  // per-sender-rank decision counter
  std::atomic<std::uint64_t> stat_delays{0};
  std::atomic<std::uint64_t> stat_duplicates{0};
  std::atomic<std::uint64_t> stat_reorders{0};
  std::atomic<std::uint64_t> stat_straggler_delays{0};

  /// Next deterministic uniform draw in [0,1) for `rank`'s send stream.
  /// Called only from that rank's thread.
  double draw(int rank) {
    const std::uint64_t n =
        mix64(faults.seed ^ mix64(static_cast<std::uint64_t>(rank) ^
                                  mix64(fault_seq[static_cast<std::size_t>(
                                      rank)]++)));
    return static_cast<double>(n >> 11) * 0x1.0p-53;
  }

  bool is_straggler(int rank) const {
    return std::find(faults.straggler_ranks.begin(),
                     faults.straggler_ranks.end(),
                     rank) != faults.straggler_ranks.end();
  }

  /// Deliver a matched message into a posted receive and complete the
  /// involved requests. Caller holds the mailbox lock.
  void deliver(PostedRecv& p, Message& m) {
    TDG_REQUIRE(p.bytes >= m.bytes, "recv: receive buffer too small");
    if (m.src_buf != nullptr) {  // rendezvous: copy + release sender
      std::memcpy(p.buf, m.src_buf, m.bytes);
      m.sreq->done.store(true, std::memory_order_release);
    } else {
      std::memcpy(p.buf, m.staged.data(), m.bytes);
    }
    p.rreq->done.store(true, std::memory_order_release);
    if (m.delayed) delayed_count.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Drive delivery of due delayed messages in `rank`'s mailbox. Per-
  /// (src,tag) non-overtaking is preserved: a posted receive only matches
  /// the *first* queued message of its stream, and skips the stream
  /// entirely while that head is still held.
  void progress(int rank) {
    if (rank < 0 || delayed_count.load(std::memory_order_acquire) == 0) {
      return;
    }
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(rank)];
    const std::uint64_t now = now_ns();
    std::lock_guard<std::mutex> g(mb.mu);
    for (std::size_t pi = 0; pi < mb.posted.size();) {
      PostedRecv& p = mb.posted[pi];
      bool delivered = false;
      for (auto it = mb.unexpected.begin(); it != mb.unexpected.end();
           ++it) {
        if (it->src != p.src || it->tag != p.tag) continue;
        if (it->deliver_at_ns > now) break;  // head of stream not yet due
        deliver(p, *it);
        mb.unexpected.erase(it);
        delivered = true;
        break;
      }
      if (delivered) {
        mb.posted.erase(mb.posted.begin() + static_cast<std::ptrdiff_t>(pi));
      } else {
        ++pi;
      }
    }
  }
};

}  // namespace detail

using detail::Mailbox;
using detail::Message;
using detail::PostedRecv;
using detail::ReqKind;
using detail::ReqState;

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

bool Request::done() const {
  if (state_ == nullptr) return true;
  if (state_->done.load(std::memory_order_acquire)) return true;
  // Fault-injected delays park messages in the mailbox; whoever polls an
  // incomplete request lends progress so due messages get delivered even
  // if the owning rank is busy executing tasks.
  if (state_->world != nullptr) {
    state_->world->progress(state_->progress_rank);
    return state_->done.load(std::memory_order_acquire);
  }
  return false;
}

std::string Request::describe() const {
  if (state_ == nullptr) return "request <empty>";
  std::string s;
  switch (state_->kind) {
    case ReqKind::Send:
      s = "isend dest=" + std::to_string(state_->peer) +
          " tag=" + std::to_string(state_->tag) +
          " bytes=" + std::to_string(state_->bytes);
      break;
    case ReqKind::Recv:
      s = "irecv src=" + std::to_string(state_->peer) +
          " tag=" + std::to_string(state_->tag) +
          " bytes=" + std::to_string(state_->bytes);
      break;
    case ReqKind::Collective:
      s = "iallreduce count=" + std::to_string(state_->bytes /
                                               sizeof(double));
      break;
    case ReqKind::None:
      s = "request <untyped>";
      break;
  }
  s += state_->done.load(std::memory_order_acquire) ? " (done)"
                                                    : " (pending)";
  return s;
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

int Comm::size() const { return world_->nranks; }

Request Comm::isend(const void* buf, std::size_t bytes, int dest, int tag) {
  TDG_REQUIRE(dest >= 0 && dest < world_->nranks, "isend: bad destination");
  counters_.sends.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  auto sreq = std::make_shared<ReqState>();
  sreq->kind = ReqKind::Send;
  sreq->peer = dest;
  sreq->tag = tag;
  sreq->bytes = bytes;
  sreq->world = world_;
  sreq->progress_rank = dest;  // matching happens in the dest mailbox

  // Fault-plan decisions for this message (sender-sequence deterministic).
  std::uint64_t extra_delay_ns = 0;
  bool duplicate = false;
  bool reorder = false;
  if (world_->faults_active) {
    const FaultPlan& fp = world_->faults;
    if (fp.delay_probability > 0.0 &&
        world_->draw(rank_) < fp.delay_probability) {
      extra_delay_ns += static_cast<std::uint64_t>(fp.delay_seconds * 1e9);
      world_->stat_delays.fetch_add(1, std::memory_order_relaxed);
    }
    if (world_->is_straggler(rank_) && fp.straggler_delay_seconds > 0.0) {
      extra_delay_ns +=
          static_cast<std::uint64_t>(fp.straggler_delay_seconds * 1e9);
      world_->stat_straggler_delays.fetch_add(1, std::memory_order_relaxed);
    }
    duplicate = fp.duplicate_probability > 0.0 &&
                world_->draw(rank_) < fp.duplicate_probability &&
                bytes <= world_->eager_threshold;
    reorder = fp.reorder_probability > 0.0 &&
              world_->draw(rank_) < fp.reorder_probability;
    // Stats count *decisions*, taken here so they are a pure function of
    // (seed, rank, sequence). Whether a drawn duplicate/reorder is
    // actually applied depends on mailbox state (an early fast-path match,
    // an empty queue), which varies with thread interleaving.
    if (duplicate) {
      world_->stat_duplicates.fetch_add(1, std::memory_order_relaxed);
    }
    if (reorder) {
      world_->stat_reorders.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const bool held = extra_delay_ns > 0;

  Mailbox& mb = *world_->mailboxes[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> g(mb.mu);
  if (!held) {
    // Non-overtaking: only match the *first* posted receive for (src,tag),
    // and only if no earlier message of this stream is still queued (a
    // held message must not be overtaken by this one).
    bool stream_queued = false;
    for (const Message& q : mb.unexpected) {
      if (q.src == rank_ && q.tag == tag) {
        stream_queued = true;
        break;
      }
    }
    if (!stream_queued) {
      for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
        if (it->src == rank_ && it->tag == tag) {
          TDG_REQUIRE(it->bytes >= bytes,
                      "isend: receive buffer too small");
          std::memcpy(it->buf, buf, bytes);
          it->rreq->done.store(true, std::memory_order_release);
          mb.posted.erase(it);
          sreq->done.store(true, std::memory_order_release);
          // direct copy: counts as eager completion
          counters_.eager_sends.fetch_add(1, std::memory_order_relaxed);
          return Request(std::move(sreq));
        }
      }
    }
  }
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.bytes = bytes;
  if (held) {
    m.deliver_at_ns = now_ns() + extra_delay_ns;
    m.delayed = true;
    world_->delayed_count.fetch_add(1, std::memory_order_acq_rel);
  }
  if (bytes <= world_->eager_threshold) {
    m.staged.resize(bytes);
    std::memcpy(m.staged.data(), buf, bytes);
    sreq->done.store(true, std::memory_order_release);
    counters_.eager_sends.fetch_add(1, std::memory_order_relaxed);
  } else {
    m.src_buf = buf;
    m.sreq = sreq;
    counters_.rendezvous_sends.fetch_add(1, std::memory_order_relaxed);
  }
  if (duplicate) {
    // Duplicate delivery fault: a second copy of the staged payload that
    // completes no request, but can satisfy a later same-(src,tag) receive
    // with stale data. Only meaningful for eager messages.
    Message dup;
    dup.src = m.src;
    dup.tag = m.tag;
    dup.bytes = m.bytes;
    dup.staged = m.staged;
    dup.deliver_at_ns = m.deliver_at_ns;
    dup.delayed = m.delayed;
    if (dup.delayed) {
      world_->delayed_count.fetch_add(1, std::memory_order_acq_rel);
    }
    mb.unexpected.push_back(std::move(dup));
  }
  if (reorder && !mb.unexpected.empty() &&
      (mb.unexpected.back().src != rank_ ||
       mb.unexpected.back().tag != tag)) {
    // Reordering fault: jump ahead of the most recently queued message of
    // a different stream (per-stream non-overtaking stays intact).
    mb.unexpected.insert(mb.unexpected.end() - 1, std::move(m));
  } else {
    mb.unexpected.push_back(std::move(m));
  }
  return Request(std::move(sreq));
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  TDG_REQUIRE(src >= 0 && src < world_->nranks, "irecv: bad source");
  counters_.recvs.fetch_add(1, std::memory_order_relaxed);
  auto rreq = std::make_shared<ReqState>();
  rreq->kind = ReqKind::Recv;
  rreq->peer = src;
  rreq->tag = tag;
  rreq->bytes = bytes;
  rreq->world = world_;
  rreq->progress_rank = rank_;  // matching happens in our own mailbox
  Mailbox& mb = *world_->mailboxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> g(mb.mu);
  const std::uint64_t now = now_ns();
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    if (it->src != src || it->tag != tag) continue;
    if (it->deliver_at_ns > now) break;  // held: deliver later via progress
    TDG_REQUIRE(bytes >= it->bytes, "irecv: receive buffer too small");
    PostedRecv p{src, tag, bytes, buf, rreq};
    world_->deliver(p, *it);
    mb.unexpected.erase(it);
    return Request(std::move(rreq));
  }
  mb.posted.push_back(PostedRecv{src, tag, bytes, buf, rreq});
  return Request(std::move(rreq));
}

Request Comm::iallreduce(const double* sendbuf, double* recvbuf,
                         std::size_t count, Op op) {
  counters_.allreduces.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t slot_id = coll_seq_++;
  auto req = std::make_shared<ReqState>();
  req->kind = ReqKind::Collective;
  req->bytes = count * sizeof(double);
  std::lock_guard<std::mutex> g(world_->coll_mu);
  detail::CollectiveSlot& slot = world_->collectives[slot_id];
  if (slot.contributed == 0) {
    slot.op = op;
    slot.count = count;
    slot.by_rank.resize(static_cast<std::size_t>(world_->nranks));
  } else {
    TDG_REQUIRE(slot.count == count && slot.op == op,
                "iallreduce: mismatched count/op across ranks");
  }
  slot.by_rank[static_cast<std::size_t>(rank_)].assign(sendbuf,
                                                       sendbuf + count);
  slot.outs.push_back({recvbuf, req});
  ++slot.contributed;
  if (slot.contributed == world_->nranks) {
    std::vector<double> acc = slot.by_rank[0];
    for (int r = 1; r < world_->nranks; ++r) {
      const auto& c = slot.by_rank[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = detail::reduce_one(op, acc[i], c[i]);
      }
    }
    for (auto& out : slot.outs) {
      std::memcpy(out.buf, acc.data(), count * sizeof(double));
      out.req->done.store(true, std::memory_order_release);
    }
    world_->collectives.erase(slot_id);
  }
  return Request(std::move(req));
}

void Comm::barrier() {
  double in = 0, out = 0;
  allreduce(&in, &out, 1, Op::Sum);
}

void Comm::wait(const Request& r) const {
  if (world_->default_wait_deadline > 0.0) {
    wait_for(r, world_->default_wait_deadline);
    return;
  }
  while (!r.done()) std::this_thread::yield();
}

void Comm::waitall(const std::vector<Request>& rs) const {
  for (const Request& r : rs) wait(r);
}

void Comm::wait_for(const Request& r, double deadline_seconds) const {
  const double t0 = now_seconds();
  while (!r.done()) {
    if (now_seconds() - t0 >= deadline_seconds) {
      char head[96];
      std::snprintf(head, sizeof head,
                    "Comm::wait_for: rank %d exceeded %.3fs deadline on ",
                    rank_, deadline_seconds);
      throw DeadlineError(std::string(head) + r.describe());
    }
    std::this_thread::yield();
  }
}

void Comm::waitall_for(const std::vector<Request>& rs,
                       double deadline_seconds) const {
  const double t0 = now_seconds();
  for (const Request& r : rs) {
    while (!r.done()) {
      if (now_seconds() - t0 >= deadline_seconds) {
        std::string msg =
            "Comm::waitall_for: rank " + std::to_string(rank_) +
            " exceeded " + std::to_string(deadline_seconds) +
            "s deadline; pending:";
        for (const Request& p : rs) {
          if (!p.done()) msg += "\n  " + p.describe();
        }
        throw DeadlineError(std::move(msg));
      }
      std::this_thread::yield();
    }
  }
}

FaultStats Comm::fault_stats() const {
  FaultStats s;
  s.delays = world_->stat_delays.load(std::memory_order_relaxed);
  s.duplicates = world_->stat_duplicates.load(std::memory_order_relaxed);
  s.reorders = world_->stat_reorders.load(std::memory_order_relaxed);
  s.straggler_delays =
      world_->stat_straggler_delays.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Universe
// ---------------------------------------------------------------------------

void Universe::run(int nranks, const std::function<void(Comm&)>& fn,
                   Options opts) {
  TDG_REQUIRE(nranks > 0, "Universe requires at least one rank");
  detail::World world;
  world.nranks = nranks;
  world.eager_threshold = opts.eager_threshold;
  world.default_wait_deadline = opts.default_wait_deadline_seconds;
  world.faults = opts.faults;
  world.faults_active = opts.faults.active();
  world.fault_seq.assign(static_cast<std::size_t>(nranks), 0);
  world.mailboxes.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    world.mailboxes.push_back(std::make_unique<Mailbox>());
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  // Per-rank traffic snapshots, captured before each rank thread exits so
  // TDG_METRICS=dump can report them after the join.
  std::vector<CommStats> rank_stats(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, &rank_stats, r] {
      try {
        Comm comm(world, r);
        struct StatsCapture {
          Comm& c;
          CommStats& out;
          ~StatsCapture() { out = c.stats(); }
        } capture{comm, rank_stats[static_cast<std::size_t>(r)]};
        fn(comm);
      } catch (...) {
        // Captured, not terminated: rethrown on the joining thread below
        // so distributed tests can assert on per-rank failures.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (metrics_env_mode() == MetricsEnvMode::Dump) {
    std::fprintf(stderr, "tdg: universe comm stats (%d ranks)\n", nranks);
    for (int r = 0; r < nranks; ++r) {
      const CommStats& s = rank_stats[static_cast<std::size_t>(r)];
      std::fprintf(stderr,
                   "  rank %d: sends=%llu (eager=%llu rendezvous=%llu) "
                   "recvs=%llu bytes_sent=%llu allreduces=%llu\n",
                   r, static_cast<unsigned long long>(s.sends),
                   static_cast<unsigned long long>(s.eager_sends),
                   static_cast<unsigned long long>(s.rendezvous_sends),
                   static_cast<unsigned long long>(s.recvs),
                   static_cast<unsigned long long>(s.bytes_sent),
                   static_cast<unsigned long long>(s.allreduces));
    }
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace tdg::mpi
