#include "mpi/mpi.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>

#include "core/common.hpp"

namespace tdg::mpi {
namespace detail {

namespace {
double reduce_one(Op op, double a, double b) {
  switch (op) {
    case Op::Min:
      return std::min(a, b);
    case Op::Max:
      return std::max(a, b);
    case Op::Sum:
      return a + b;
  }
  return a;
}
}  // namespace

// One in-flight message, staged (eager) or referencing the sender's buffer
// (rendezvous, completed by the receiver at match time).
struct Message {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  const void* src_buf = nullptr;      // rendezvous only
  std::vector<std::byte> staged;      // eager only
  std::shared_ptr<ReqState> sreq;     // rendezvous sender request
};

struct PostedRecv {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  void* buf = nullptr;
  std::shared_ptr<ReqState> rreq;
};

// Per-destination-rank matching queues (an MPI matching engine).
struct Mailbox {
  std::mutex mu;
  std::deque<Message> unexpected;
  std::deque<PostedRecv> posted;
};

struct CollectiveSlot {
  int contributed = 0;
  Op op = Op::Sum;
  std::size_t count = 0;
  /// Contributions keyed by rank: the reduction is applied in rank order
  /// at completion, so floating-point results are deterministic across
  /// runs regardless of arrival order.
  std::vector<std::vector<double>> by_rank;
  struct Out {
    double* buf;
    std::shared_ptr<ReqState> req;
  };
  std::vector<Out> outs;
};

struct World {
  int nranks = 0;
  std::size_t eager_threshold = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::mutex coll_mu;
  std::unordered_map<std::uint64_t, CollectiveSlot> collectives;
};

}  // namespace detail

using detail::Mailbox;
using detail::Message;
using detail::PostedRecv;
using detail::ReqState;

int Comm::size() const { return world_->nranks; }

Request Comm::isend(const void* buf, std::size_t bytes, int dest, int tag) {
  TDG_CHECK(dest >= 0 && dest < world_->nranks, "isend: bad destination");
  ++stats_.sends;
  stats_.bytes_sent += bytes;
  auto sreq = std::make_shared<ReqState>();
  Mailbox& mb = *world_->mailboxes[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> g(mb.mu);
  // Non-overtaking: only match the *first* posted receive for (src,tag).
  for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
    if (it->src == rank_ && it->tag == tag) {
      TDG_CHECK(it->bytes >= bytes, "isend: receive buffer too small");
      std::memcpy(it->buf, buf, bytes);
      it->rreq->done.store(true, std::memory_order_release);
      mb.posted.erase(it);
      sreq->done.store(true, std::memory_order_release);
      ++stats_.eager_sends;  // direct copy: counts as eager completion
      return Request(std::move(sreq));
    }
  }
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.bytes = bytes;
  if (bytes <= world_->eager_threshold) {
    m.staged.resize(bytes);
    std::memcpy(m.staged.data(), buf, bytes);
    sreq->done.store(true, std::memory_order_release);
    ++stats_.eager_sends;
  } else {
    m.src_buf = buf;
    m.sreq = sreq;
    ++stats_.rendezvous_sends;
  }
  mb.unexpected.push_back(std::move(m));
  return Request(std::move(sreq));
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  TDG_CHECK(src >= 0 && src < world_->nranks, "irecv: bad source");
  ++stats_.recvs;
  auto rreq = std::make_shared<ReqState>();
  Mailbox& mb = *world_->mailboxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> g(mb.mu);
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    if (it->src == src && it->tag == tag) {
      TDG_CHECK(bytes >= it->bytes, "irecv: receive buffer too small");
      if (it->src_buf != nullptr) {  // rendezvous: copy + release sender
        std::memcpy(buf, it->src_buf, it->bytes);
        it->sreq->done.store(true, std::memory_order_release);
      } else {
        std::memcpy(buf, it->staged.data(), it->bytes);
      }
      mb.unexpected.erase(it);
      rreq->done.store(true, std::memory_order_release);
      return Request(std::move(rreq));
    }
  }
  mb.posted.push_back(PostedRecv{src, tag, bytes, buf, rreq});
  return Request(std::move(rreq));
}

Request Comm::iallreduce(const double* sendbuf, double* recvbuf,
                         std::size_t count, Op op) {
  ++stats_.allreduces;
  const std::uint64_t slot_id = coll_seq_++;
  auto req = std::make_shared<ReqState>();
  std::lock_guard<std::mutex> g(world_->coll_mu);
  detail::CollectiveSlot& slot = world_->collectives[slot_id];
  if (slot.contributed == 0) {
    slot.op = op;
    slot.count = count;
    slot.by_rank.resize(static_cast<std::size_t>(world_->nranks));
  } else {
    TDG_CHECK(slot.count == count && slot.op == op,
              "iallreduce: mismatched count/op across ranks");
  }
  slot.by_rank[static_cast<std::size_t>(rank_)].assign(sendbuf,
                                                       sendbuf + count);
  slot.outs.push_back({recvbuf, req});
  ++slot.contributed;
  if (slot.contributed == world_->nranks) {
    std::vector<double> acc = slot.by_rank[0];
    for (int r = 1; r < world_->nranks; ++r) {
      const auto& c = slot.by_rank[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < count; ++i) {
        acc[i] = detail::reduce_one(op, acc[i], c[i]);
      }
    }
    for (auto& out : slot.outs) {
      std::memcpy(out.buf, acc.data(), count * sizeof(double));
      out.req->done.store(true, std::memory_order_release);
    }
    world_->collectives.erase(slot_id);
  }
  return Request(std::move(req));
}

void Comm::barrier() {
  double in = 0, out = 0;
  allreduce(&in, &out, 1, Op::Sum);
}

void Comm::wait(const Request& r) const {
  while (!r.done()) std::this_thread::yield();
}

void Comm::waitall(const std::vector<Request>& rs) const {
  for (const Request& r : rs) wait(r);
}

void Universe::run(int nranks, const std::function<void(Comm&)>& fn,
                   Options opts) {
  TDG_CHECK(nranks > 0, "Universe requires at least one rank");
  detail::World world;
  world.nranks = nranks;
  world.eager_threshold = opts.eager_threshold;
  world.mailboxes.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    world.mailboxes.push_back(std::make_unique<Mailbox>());
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, r] {
      Comm comm(world, r);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace tdg::mpi
