#include "mpi/mpi.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <thread>
#include <unordered_map>

#include <fstream>

#include "core/common.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/trace_export.hpp"

namespace tdg::mpi {
namespace detail {

namespace {
double reduce_one(Op op, double a, double b) {
  switch (op) {
    case Op::Min:
      return std::min(a, b);
    case Op::Max:
      return std::max(a, b);
    case Op::Sum:
      return a + b;
  }
  return a;
}

// Counter-based splitmix64: stateless hash of (seed, rank, sequence), so
// fault decisions depend only on a rank's own send sequence — deterministic
// across thread interleavings.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double to_unit(std::uint64_t n) {
  return static_cast<double>(n >> 11) * 0x1.0p-53;
}

// (src-or-dest, tag) stream key for sequence-number maps.
std::uint64_t skey(int rank, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank))
          << 32) |
         static_cast<std::uint32_t>(tag);
}

std::uint64_t seconds_to_ns(double s) {
  return static_cast<std::uint64_t>(s * 1e9);
}
}  // namespace

// One in-flight message, staged (eager) or referencing the sender's buffer
// (rendezvous, completed by the receiver at match time).
struct Message {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  const void* src_buf = nullptr;      // rendezvous only
  std::vector<std::byte> staged;      // eager only
  std::shared_ptr<ReqState> sreq;     // rendezvous sender request
  std::uint64_t deliver_at_ns = 0;    // fault injection: matchable when due
  bool delayed = false;               // counted in World::delayed_count
  bool reliable = false;              // carries a stream sequence number
  std::uint64_t seq = 0;              // per-(src,tag) stream sequence
};

struct PostedRecv {
  int src = 0;
  int tag = 0;
  std::size_t bytes = 0;
  void* buf = nullptr;
  std::shared_ptr<ReqState> rreq;
};

// Per-destination-rank matching queues (an MPI matching engine).
struct Mailbox {
  std::mutex mu;
  std::deque<Message> unexpected;
  std::deque<PostedRecv> posted;
  /// Reliable delivery: next expected sequence number per (src, tag)
  /// stream. A queued message only matches when its seq is the expected
  /// one; stale seqs are duplicates and discarded.
  std::unordered_map<std::uint64_t, std::uint64_t> expected_seq;
};

struct CollectiveSlot {
  int contributed = 0;
  Op op = Op::Sum;
  std::size_t count = 0;
  /// Contributions keyed by rank: the reduction is applied in rank order
  /// at completion, so floating-point results are deterministic across
  /// runs regardless of arrival order.
  std::vector<std::vector<double>> by_rank;
  std::vector<char> contributed_by;
  struct Out {
    int rank;
    double* buf;
    std::shared_ptr<ReqState> req;
  };
  std::vector<Out> outs;
};

/// One lost transmission awaiting retransmission (sender-side record,
/// guarded by the owning RankState's mutex).
struct RetransmitRec {
  int dst = 0;
  int tag = 0;
  std::uint64_t seq = 0;
  std::size_t bytes = 0;
  std::vector<std::byte> payload;
  std::uint64_t next_at_ns = 0;
  int attempts = 0;
};

/// Per-rank resilience state: heartbeat, detector view, kill flag,
/// reliable-delivery sender state.
struct RankState {
  std::atomic<std::uint64_t> heartbeat_ns{0};
  std::atomic<RankStatus> status{RankStatus::Alive};
  std::atomic<bool> dead{false};      ///< ground truth: kill executed
  std::atomic<bool> finished{false};  ///< rank fn returned normally
  std::atomic<std::uint64_t> send_count{0};
  std::atomic<std::uint64_t> fault_seq{0};
  std::atomic<std::uint64_t> last_scan_ns{0};
  std::mutex mu;  // guards send_seq + trace seqs + retransmits
  std::unordered_map<std::uint64_t, std::uint64_t> send_seq;
  /// Comm-trace stream counters (World::comm_trace): posts counted per
  /// (peer, tag) independently on each side; non-overtaking delivery
  /// makes the nth send and nth receive of a stream agree.
  std::unordered_map<std::uint64_t, std::uint64_t> trace_send_seq;
  std::unordered_map<std::uint64_t, std::uint64_t> trace_recv_seq;
  std::vector<RetransmitRec> retransmits;
};

struct World {
  int nranks = 0;
  std::size_t eager_threshold = 0;
  double default_wait_deadline = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::mutex coll_mu;
  std::unordered_map<std::uint64_t, CollectiveSlot> collectives;

  // --- fault injection -----------------------------------------------------
  FaultPlan faults;
  bool faults_active = false;
  bool kills_configured = false;
  /// Comm-event tracing: assign stream sequence numbers at post time
  /// (Options::comm_trace, or automatic while TDG_TRACE is active).
  bool comm_trace = false;
  /// Messages currently held past their send time; while non-zero, request
  /// polling drives Mailbox progress so due messages get delivered.
  std::atomic<int> delayed_count{0};
  std::atomic<std::uint64_t> stat_delays{0};
  std::atomic<std::uint64_t> stat_duplicates{0};
  std::atomic<std::uint64_t> stat_reorders{0};
  std::atomic<std::uint64_t> stat_straggler_delays{0};
  std::atomic<std::uint64_t> stat_drops{0};
  std::atomic<std::uint64_t> stat_kills{0};

  // --- resilience ----------------------------------------------------------
  ReliableConfig reliable;
  HeartbeatConfig hb;
  /// Any feature needing per-poll work (reliable, heartbeat, kills). When
  /// false, rank_poll() is a single branch — the zero-overhead guarantee.
  bool resilient = false;
  std::vector<std::unique_ptr<RankState>> rank_states;
  std::atomic<std::uint64_t> last_detect_ns{0};
  std::uint64_t rel_timeout_ns = 0;
  std::uint64_t rel_scan_interval_ns = 0;
  std::atomic<std::uint64_t> stat_retransmits{0};
  std::atomic<std::uint64_t> stat_dup_suppressed{0};
  std::atomic<std::uint64_t> stat_giveups{0};
  std::atomic<std::uint64_t> stat_sends_to_dead{0};
  std::atomic<int> stat_ranks_failed{0};

  RankState& rank_state(int r) {
    return *rank_states[static_cast<std::size_t>(r)];
  }

  /// Next deterministic uniform draw in [0,1) for `rank`'s send stream.
  double draw(int rank) {
    const std::uint64_t c =
        rank_state(rank).fault_seq.fetch_add(1, std::memory_order_relaxed);
    return to_unit(mix64(faults.seed ^
                         mix64(static_cast<std::uint64_t>(rank) ^
                               mix64(c))));
  }

  /// Loss draw for a retransmission attempt: keyed by the message identity
  /// and attempt number, on a stream separate from draw() so app-level
  /// fault decisions stay reproducible regardless of retransmit timing.
  double retransmit_draw(int rank, int dst, int tag, std::uint64_t seq,
                         int attempt) {
    std::uint64_t h = faults.seed ^ 0x7265747279ULL;  // "retry"
    h = mix64(h ^ (static_cast<std::uint64_t>(rank) << 32 |
                   static_cast<std::uint32_t>(dst)));
    h = mix64(h ^ skey(tag, static_cast<int>(seq)));
    h = mix64(h ^ static_cast<std::uint64_t>(attempt));
    return to_unit(h);
  }

  bool is_straggler(int rank) const {
    return std::find(faults.straggler_ranks.begin(),
                     faults.straggler_ranks.end(),
                     rank) != faults.straggler_ranks.end();
  }

  RankStatus status_of(int r) {
    return rank_state(r).status.load(std::memory_order_acquire);
  }

  /// True when sends to `r` are pointless: the detector declared it dead,
  /// or it was killed by the fault plan (its thread is unwinding).
  bool unreachable(int r) {
    RankState& rs = rank_state(r);
    return rs.dead.load(std::memory_order_acquire) ||
           rs.status.load(std::memory_order_acquire) == RankStatus::Dead;
  }

  static void fail_req(const std::shared_ptr<ReqState>& q, int dead_rank) {
    q->failed_rank = dead_rank;
    q->failed.store(true, std::memory_order_release);
    q->done.store(true, std::memory_order_release);
  }

  /// Deliver a matched message into a posted receive and complete the
  /// involved requests. Caller holds the mailbox lock.
  void deliver(PostedRecv& p, Message& m) {
    TDG_REQUIRE(p.bytes >= m.bytes, "recv: receive buffer too small");
    if (m.src_buf != nullptr) {  // rendezvous: copy + release sender
      std::memcpy(p.buf, m.src_buf, m.bytes);
      m.sreq->done.store(true, std::memory_order_release);
    } else {
      std::memcpy(p.buf, m.staged.data(), m.bytes);
    }
    p.rreq->done.store(true, std::memory_order_release);
    if (m.delayed) delayed_count.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Try to satisfy `p` from the queued messages of its (src, tag)
  /// stream. Caller holds the mailbox lock. Ordering rules: a plain
  /// stream only matches its first queued message and is skipped while
  /// that head is held (non-overtaking); a reliable stream matches by
  /// sequence number — stale seqs are discarded as duplicates, future
  /// seqs are skipped until the gap fills (a retransmitted copy may sit
  /// behind newer messages in the deque).
  bool try_match(Mailbox& mb, PostedRecv& p, std::uint64_t now) {
    for (auto it = mb.unexpected.begin(); it != mb.unexpected.end();) {
      if (it->src != p.src || it->tag != p.tag) {
        ++it;
        continue;
      }
      if (it->reliable) {
        std::uint64_t& expected = mb.expected_seq[skey(p.src, p.tag)];
        if (it->seq < expected) {  // duplicate (injection or retransmit)
          stat_dup_suppressed.fetch_add(1, std::memory_order_relaxed);
          if (it->delayed) {
            delayed_count.fetch_sub(1, std::memory_order_acq_rel);
          }
          it = mb.unexpected.erase(it);
          continue;
        }
        if (it->seq > expected) {  // gap: look for the expected copy
          ++it;
          continue;
        }
        if (it->deliver_at_ns > now) return false;  // expected copy held
        deliver(p, *it);
        ++expected;
        mb.unexpected.erase(it);
        return true;
      }
      if (it->deliver_at_ns > now) return false;  // head of stream held
      deliver(p, *it);
      mb.unexpected.erase(it);
      return true;
    }
    return false;
  }

  /// Match every posted receive against the queued messages. Caller holds
  /// the mailbox lock.
  void match_mailbox(Mailbox& mb, std::uint64_t now) {
    for (std::size_t pi = 0; pi < mb.posted.size();) {
      if (try_match(mb, mb.posted[pi], now)) {
        mb.posted.erase(mb.posted.begin() +
                        static_cast<std::ptrdiff_t>(pi));
      } else {
        ++pi;
      }
    }
  }

  /// True when some queued message can (eventually) satisfy a receive on
  /// `p`'s stream: any queued stream message for plain streams, a queued
  /// copy of the *expected* seq for reliable ones (a permanent gap — the
  /// sender died or gave up — cannot). Held messages count: they become
  /// due. Caller holds the mailbox lock.
  bool stream_can_satisfy(Mailbox& mb, const PostedRecv& p) {
    std::uint64_t expected = 0;
    const auto itseq = mb.expected_seq.find(skey(p.src, p.tag));
    if (itseq != mb.expected_seq.end()) expected = itseq->second;
    for (const Message& m : mb.unexpected) {
      if (m.src != p.src || m.tag != p.tag) continue;
      if (!m.reliable || m.seq == expected) return true;
    }
    return false;
  }

  /// Drive delivery of due delayed messages in `rank`'s mailbox.
  void progress(int rank) {
    if (rank < 0 || delayed_count.load(std::memory_order_acquire) == 0) {
      return;
    }
    Mailbox& mb = *mailboxes[static_cast<std::size_t>(rank)];
    const std::uint64_t now = now_ns();
    std::lock_guard<std::mutex> g(mb.mu);
    match_mailbox(mb, now);
  }

  // --- reliable delivery ---------------------------------------------------

  /// Re-send lost transmissions of `rank` whose backoff deadline passed.
  /// `forced` skips the scan-interval gate (exit flush).
  void scan_retransmits(int rank, std::uint64_t now, bool forced = false) {
    RankState& rs = rank_state(rank);
    if (!forced &&
        now - rs.last_scan_ns.load(std::memory_order_relaxed) <
            rel_scan_interval_ns) {
      return;
    }
    rs.last_scan_ns.store(now, std::memory_order_relaxed);
    std::vector<RetransmitRec> due;
    {
      std::lock_guard<std::mutex> g(rs.mu);
      if (rs.retransmits.empty()) return;
      if (rs.dead.load(std::memory_order_relaxed)) {
        stat_giveups.fetch_add(rs.retransmits.size(),
                               std::memory_order_relaxed);
        rs.retransmits.clear();
        return;
      }
      for (std::size_t i = 0; i < rs.retransmits.size();) {
        RetransmitRec& rec = rs.retransmits[i];
        if (now < rec.next_at_ns) {
          ++i;
          continue;
        }
        if (rec.attempts >= reliable.max_retransmits ||
            unreachable(rec.dst)) {
          stat_giveups.fetch_add(1, std::memory_order_relaxed);
          rs.retransmits[i] = std::move(rs.retransmits.back());
          rs.retransmits.pop_back();
          continue;
        }
        ++rec.attempts;
        double backoff = 1.0;
        for (int a = 0; a < rec.attempts; ++a) {
          backoff *= reliable.backoff_multiplier;
        }
        rec.next_at_ns =
            now + static_cast<std::uint64_t>(
                      static_cast<double>(rel_timeout_ns) * backoff);
        due.push_back(rec);  // copy; the record survives a re-loss
        ++i;
      }
    }
    std::vector<RetransmitRec> landed;
    for (RetransmitRec& rec : due) {
      stat_retransmits.fetch_add(1, std::memory_order_relaxed);
      if (faults.loss_probability > 0.0 &&
          retransmit_draw(rank, rec.dst, rec.tag, rec.seq, rec.attempts) <
              faults.loss_probability) {
        stat_drops.fetch_add(1, std::memory_order_relaxed);
        continue;  // lost again; the record's backoff re-sends it
      }
      Message m;
      m.src = rank;
      m.tag = rec.tag;
      m.bytes = rec.bytes;
      m.staged = std::move(rec.payload);
      m.reliable = true;
      m.seq = rec.seq;
      Mailbox& mb = *mailboxes[static_cast<std::size_t>(rec.dst)];
      {
        std::lock_guard<std::mutex> g(mb.mu);
        mb.unexpected.push_back(std::move(m));
        match_mailbox(mb, now_ns());
      }
      landed.push_back(std::move(rec));
    }
    if (!landed.empty()) {
      // Enqueue is the ack (shared-memory transport): drop the records.
      std::lock_guard<std::mutex> g(rs.mu);
      for (const RetransmitRec& rec : landed) {
        for (std::size_t i = 0; i < rs.retransmits.size(); ++i) {
          RetransmitRec& r2 = rs.retransmits[i];
          if (r2.dst == rec.dst && r2.tag == rec.tag &&
              r2.seq == rec.seq) {
            rs.retransmits[i] = std::move(rs.retransmits.back());
            rs.retransmits.pop_back();
            break;
          }
        }
      }
    }
  }

  /// Retransmit until this rank's loss records drain (rank exit). Bounded:
  /// gives up on what is left after ~2s (counted in ReliableStats).
  void flush_rank(int rank) {
    if (!reliable.enabled) return;
    RankState& rs = rank_state(rank);
    const std::uint64_t deadline = now_ns() + seconds_to_ns(2.0);
    for (;;) {
      {
        std::lock_guard<std::mutex> g(rs.mu);
        if (rs.retransmits.empty()) return;
      }
      if (now_ns() > deadline) {
        std::lock_guard<std::mutex> g(rs.mu);
        stat_giveups.fetch_add(rs.retransmits.size(),
                               std::memory_order_relaxed);
        rs.retransmits.clear();
        return;
      }
      scan_retransmits(rank, now_ns(), /*forced=*/true);
      if (hb.enabled) maybe_detect(now_ns());
      std::this_thread::yield();
    }
  }

  // --- failure detection ---------------------------------------------------

  /// Advance the shared heartbeat detector (any rank's poll drives it; a
  /// CAS on the detection timestamp keeps it one-at-a-time and gated to
  /// the heartbeat period).
  void maybe_detect(std::uint64_t now) {
    std::uint64_t last = last_detect_ns.load(std::memory_order_relaxed);
    const std::uint64_t interval = seconds_to_ns(hb.period_seconds);
    if (now < last + interval) return;
    if (!last_detect_ns.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
      return;
    }
    const std::uint64_t suspect_ns = seconds_to_ns(hb.suspect_seconds);
    const std::uint64_t fail_ns = seconds_to_ns(hb.fail_seconds);
    bool any_gone = false;
    for (int r = 0; r < nranks; ++r) {
      RankState& rs = rank_state(r);
      const RankStatus st = rs.status.load(std::memory_order_acquire);
      if (st == RankStatus::Dead) {
        any_gone = true;
        continue;
      }
      if (rs.finished.load(std::memory_order_acquire)) {
        rs.status.store(RankStatus::Finished, std::memory_order_release);
        any_gone = true;
        continue;
      }
      const std::uint64_t beat =
          rs.heartbeat_ns.load(std::memory_order_relaxed);
      const std::uint64_t age = now > beat ? now - beat : 0;
      if (age >= fail_ns) {
        rs.status.store(RankStatus::Dead, std::memory_order_release);
        stat_ranks_failed.fetch_add(1, std::memory_order_relaxed);
        any_gone = true;
      } else if (age >= suspect_ns) {
        if (st == RankStatus::Alive) {
          rs.status.store(RankStatus::Suspected,
                          std::memory_order_release);
        }
      } else if (st == RankStatus::Suspected) {
        rs.status.store(RankStatus::Alive, std::memory_order_release);
      }
    }
    if (any_gone) {
      sweep_dead_recvs();
      sweep_collectives();
    }
  }

  /// Fail operations a gone rank strands: posted receives whose source is
  /// dead (or finished) and whose stream holds no message that could still
  /// satisfy them, and rendezvous senders whose payload sits unreceived in
  /// a gone rank's mailbox (the receiver will never match it).
  void sweep_dead_recvs() {
    for (int d = 0; d < nranks; ++d) {
      Mailbox& mb = *mailboxes[static_cast<std::size_t>(d)];
      const RankStatus dstat = status_of(d);
      std::lock_guard<std::mutex> g(mb.mu);
      if (dstat == RankStatus::Dead || dstat == RankStatus::Finished) {
        for (auto it = mb.unexpected.begin();
             it != mb.unexpected.end();) {
          if (it->src_buf != nullptr &&
              !it->sreq->done.load(std::memory_order_acquire)) {
            if (it->delayed) {
              delayed_count.fetch_sub(1, std::memory_order_acq_rel);
            }
            fail_req(it->sreq, d);
            it = mb.unexpected.erase(it);
          } else {
            ++it;
          }
        }
        if (dstat == RankStatus::Dead) {
          // A dead (hung, expelled) rank's own receives will never be
          // safely completed into its buffers.
          for (PostedRecv& p : mb.posted) fail_req(p.rreq, d);
          mb.posted.clear();
          continue;
        }
      }
      for (std::size_t pi = 0; pi < mb.posted.size();) {
        PostedRecv& p = mb.posted[pi];
        const RankStatus st = status_of(p.src);
        if ((st == RankStatus::Dead || st == RankStatus::Finished) &&
            !stream_can_satisfy(mb, p)) {
          fail_req(p.rreq, p.src);
          mb.posted.erase(mb.posted.begin() +
                          static_cast<std::ptrdiff_t>(pi));
        } else {
          ++pi;
        }
      }
    }
  }

  /// A slot is ready when every rank has contributed or never will (dead,
  /// or finished its rank function without reaching this collective).
  bool slot_ready(const CollectiveSlot& slot) {
    for (int r = 0; r < nranks; ++r) {
      if (slot.contributed_by[static_cast<std::size_t>(r)] != 0) continue;
      const RankStatus st = status_of(r);
      if (st != RankStatus::Dead && st != RankStatus::Finished) {
        return false;
      }
    }
    return true;
  }

  /// Reduce + publish a ready slot. Caller holds coll_mu. The reduction
  /// runs over the contributors in rank order (deterministic FP), dead
  /// ranks excused.
  void complete_slot(CollectiveSlot& slot) {
    std::vector<double> acc;
    for (int r = 0; r < nranks; ++r) {
      if (slot.contributed_by[static_cast<std::size_t>(r)] == 0) continue;
      const auto& c = slot.by_rank[static_cast<std::size_t>(r)];
      if (acc.empty()) {
        acc = c;
      } else {
        for (std::size_t i = 0; i < slot.count; ++i) {
          acc[i] = reduce_one(slot.op, acc[i], c[i]);
        }
      }
    }
    for (auto& out : slot.outs) {
      std::memcpy(out.buf, acc.data(), slot.count * sizeof(double));
      out.req->done.store(true, std::memory_order_release);
    }
  }

  /// Complete collective slots whose only missing contributors are dead.
  void sweep_collectives() {
    std::lock_guard<std::mutex> g(coll_mu);
    std::vector<std::uint64_t> finished_slots;
    for (auto& [id, slot] : collectives) {
      if (slot.contributed > 0 && slot_ready(slot)) {
        complete_slot(slot);
        finished_slots.push_back(id);
      }
    }
    for (std::uint64_t id : finished_slots) collectives.erase(id);
  }

  // --- rank death ----------------------------------------------------------

  /// Execute a scheduled kill on the calling rank's own thread: invalidate
  /// every piece of world state that references the dying rank's stack
  /// (posted receives, in-flight rendezvous payloads, collective output
  /// buffers), then throw. The heartbeat detector — not this function —
  /// is what tells the *other* ranks.
  [[noreturn]] void die(int rank, std::uint64_t send_no) {
    RankState& rs = rank_state(rank);
    rs.dead.store(true, std::memory_order_seq_cst);
    stat_kills.fetch_add(1, std::memory_order_relaxed);
    {
      Mailbox& own = *mailboxes[static_cast<std::size_t>(rank)];
      std::lock_guard<std::mutex> g(own.mu);
      for (PostedRecv& p : own.posted) fail_req(p.rreq, rank);
      own.posted.clear();
    }
    for (int d = 0; d < nranks; ++d) {
      Mailbox& mb = *mailboxes[static_cast<std::size_t>(d)];
      std::lock_guard<std::mutex> g(mb.mu);
      for (auto it = mb.unexpected.begin(); it != mb.unexpected.end();) {
        if (it->src == rank && it->src_buf != nullptr) {
          if (it->delayed) {
            delayed_count.fetch_sub(1, std::memory_order_acq_rel);
          }
          fail_req(it->sreq, rank);
          it = mb.unexpected.erase(it);
        } else {
          ++it;
        }
      }
    }
    {
      std::lock_guard<std::mutex> g(coll_mu);
      for (auto& [id, slot] : collectives) {
        for (std::size_t i = 0; i < slot.outs.size();) {
          if (slot.outs[i].rank == rank) {
            fail_req(slot.outs[i].req, rank);
            slot.outs[i] = std::move(slot.outs.back());
            slot.outs.pop_back();
          } else {
            ++i;
          }
        }
      }
    }
    {
      std::lock_guard<std::mutex> g(rs.mu);
      stat_giveups.fetch_add(rs.retransmits.size(),
                             std::memory_order_relaxed);
      rs.retransmits.clear();
    }
    throw RankFailedError(
        rank, "rank " + std::to_string(rank) +
                  " killed by fault plan at send #" +
                  std::to_string(send_no));
  }

  /// One resilience step on behalf of `rank` (heartbeat, retransmissions,
  /// detector, delayed delivery). A single branch when nothing is on.
  void rank_poll(int rank) {
    if (!resilient) return;
    const std::uint64_t now = now_ns();
    RankState& rs = rank_state(rank);
    if (hb.enabled && !rs.dead.load(std::memory_order_relaxed) &&
        !rs.finished.load(std::memory_order_relaxed)) {
      rs.heartbeat_ns.store(now, std::memory_order_relaxed);
    }
    if (reliable.enabled) scan_retransmits(rank, now);
    if (hb.enabled) maybe_detect(now);
    progress(rank);
  }
};

}  // namespace detail

using detail::Mailbox;
using detail::Message;
using detail::PostedRecv;
using detail::ReqKind;
using detail::ReqState;

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

bool Request::done() const {
  if (state_ == nullptr) return true;
  if (state_->done.load(std::memory_order_acquire)) return true;
  // Fault-injected delays park messages in the mailbox; whoever polls an
  // incomplete request lends progress so due messages get delivered even
  // if the owning rank is busy executing tasks.
  if (state_->world != nullptr) {
    state_->world->progress(state_->progress_rank);
    return state_->done.load(std::memory_order_acquire);
  }
  return false;
}

std::string Request::describe() const {
  if (state_ == nullptr) return "request <empty>";
  std::string s;
  switch (state_->kind) {
    case ReqKind::Send:
      s = "isend dest=" + std::to_string(state_->peer) +
          " tag=" + std::to_string(state_->tag) +
          " bytes=" + std::to_string(state_->bytes);
      break;
    case ReqKind::Recv:
      s = "irecv src=" + std::to_string(state_->peer) +
          " tag=" + std::to_string(state_->tag) +
          " bytes=" + std::to_string(state_->bytes);
      break;
    case ReqKind::Collective:
      s = "iallreduce count=" + std::to_string(state_->bytes /
                                               sizeof(double));
      break;
    case ReqKind::None:
      s = "request <untyped>";
      break;
  }
  if (state_->failed.load(std::memory_order_acquire)) {
    s += " (failed: rank " + std::to_string(state_->failed_rank) + " died)";
  } else {
    s += state_->done.load(std::memory_order_acquire) ? " (done)"
                                                      : " (pending)";
  }
  return s;
}

// ---------------------------------------------------------------------------
// Fault-plan spec parsing (the TDG_FAULTS format)
// ---------------------------------------------------------------------------

namespace {
bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}
}  // namespace

bool parse_fault_spec(const std::string& spec, FaultPlan& fp) {
  std::size_t i = 0;
  while (i <= spec.size()) {
    std::size_t j = spec.find(',', i);
    if (j == std::string::npos) j = spec.size();
    const std::string token = spec.substr(i, j - i);
    i = j + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    if (key == "seed") {
      if (!parse_u64(val, fp.seed)) return false;
    } else if (key == "loss") {
      if (!parse_double(val, fp.loss_probability)) return false;
    } else if (key == "dup") {
      if (!parse_double(val, fp.duplicate_probability)) return false;
    } else if (key == "reorder") {
      if (!parse_double(val, fp.reorder_probability)) return false;
    } else if (key == "delay") {  // P:S
      const std::size_t c = val.find(':');
      if (c == std::string::npos) return false;
      if (!parse_double(val.substr(0, c), fp.delay_probability) ||
          !parse_double(val.substr(c + 1), fp.delay_seconds)) {
        return false;
      }
    } else if (key == "straggler") {  // R@S
      const std::size_t a = val.find('@');
      if (a == std::string::npos) return false;
      double r = 0;
      if (!parse_double(val.substr(0, a), r) ||
          !parse_double(val.substr(a + 1), fp.straggler_delay_seconds)) {
        return false;
      }
      fp.straggler_ranks.push_back(static_cast<int>(r));
    } else if (key == "kill") {  // R@N
      const std::size_t a = val.find('@');
      if (a == std::string::npos) return false;
      double r = 0;
      std::uint64_t n = 0;
      if (!parse_double(val.substr(0, a), r) ||
          !parse_u64(val.substr(a + 1), n)) {
        return false;
      }
      fp.kill_rank_at_send_seq.emplace_back(static_cast<int>(r), n);
    } else {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Comm
// ---------------------------------------------------------------------------

int Comm::size() const { return world_->nranks; }

Request Comm::isend(const void* buf, std::size_t bytes, int dest, int tag) {
  TDG_REQUIRE(dest >= 0 && dest < world_->nranks, "isend: bad destination");
  detail::World& w = *world_;
  if (w.kills_configured) {
    detail::RankState& self = w.rank_state(rank_);
    if (self.dead.load(std::memory_order_relaxed)) {
      throw RankFailedError(rank_, "isend on killed rank " +
                                       std::to_string(rank_));
    }
    const std::uint64_t n =
        self.send_count.fetch_add(1, std::memory_order_relaxed) + 1;
    for (const auto& [kr, kseq] : w.faults.kill_rank_at_send_seq) {
      if (kr == rank_ && kseq == n) w.die(rank_, n);  // throws
    }
  }
  counters_.sends.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  auto sreq = std::make_shared<ReqState>();
  sreq->kind = ReqKind::Send;
  sreq->peer = dest;
  sreq->tag = tag;
  sreq->bytes = bytes;
  sreq->world = world_;
  sreq->progress_rank = dest;  // matching happens in the dest mailbox
  if (w.comm_trace) {
    // 1-based stream sequence for the distributed trace. Tasks on any
    // worker thread may post sends, so the counter map shares the rank
    // state's lock.
    detail::RankState& self = w.rank_state(rank_);
    std::lock_guard<std::mutex> g(self.mu);
    sreq->trace_seq = ++self.trace_send_seq[detail::skey(dest, tag)];
  }

  if (w.resilient && w.unreachable(dest)) {
    // Fire-and-forget to a dead rank: discarded, completes immediately
    // (the network would drop it; the sender cannot tell).
    w.stat_sends_to_dead.fetch_add(1, std::memory_order_relaxed);
    counters_.eager_sends.fetch_add(1, std::memory_order_relaxed);
    sreq->done.store(true, std::memory_order_release);
    return Request(std::move(sreq));
  }

  // Fault-plan decisions for this message (sender-sequence deterministic).
  std::uint64_t extra_delay_ns = 0;
  bool duplicate = false;
  bool reorder = false;
  bool lost = false;
  if (w.faults_active) {
    const FaultPlan& fp = w.faults;
    if (fp.loss_probability > 0.0 &&
        w.draw(rank_) < fp.loss_probability) {
      lost = true;
      w.stat_drops.fetch_add(1, std::memory_order_relaxed);
    }
    if (fp.delay_probability > 0.0 &&
        w.draw(rank_) < fp.delay_probability) {
      extra_delay_ns += static_cast<std::uint64_t>(fp.delay_seconds * 1e9);
      w.stat_delays.fetch_add(1, std::memory_order_relaxed);
    }
    if (w.is_straggler(rank_) && fp.straggler_delay_seconds > 0.0) {
      extra_delay_ns +=
          static_cast<std::uint64_t>(fp.straggler_delay_seconds * 1e9);
      w.stat_straggler_delays.fetch_add(1, std::memory_order_relaxed);
    }
    duplicate = fp.duplicate_probability > 0.0 &&
                w.draw(rank_) < fp.duplicate_probability &&
                bytes <= w.eager_threshold;
    reorder = fp.reorder_probability > 0.0 &&
              w.draw(rank_) < fp.reorder_probability;
    // Stats count *decisions*, taken here so they are a pure function of
    // (seed, rank, sequence). Whether a drawn duplicate/reorder is
    // actually applied depends on mailbox state (an early fast-path match,
    // an empty queue), which varies with thread interleaving.
    if (duplicate) {
      w.stat_duplicates.fetch_add(1, std::memory_order_relaxed);
    }
    if (reorder) {
      w.stat_reorders.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const bool held = extra_delay_ns > 0;

  if (w.reliable.enabled) {
    // Store-and-forward: every payload is staged and the send completes at
    // post; the stream sequence number makes delivery exactly-once and
    // in-order at the receiver. A lost transmission leaves a sender-side
    // record that the retransmission scan re-sends with backoff.
    detail::RankState& self = w.rank_state(rank_);
    std::uint64_t seq = 0;
    {
      std::lock_guard<std::mutex> g(self.mu);
      seq = self.send_seq[detail::skey(dest, tag)]++;
      if (lost) {
        detail::RetransmitRec rec;
        rec.dst = dest;
        rec.tag = tag;
        rec.seq = seq;
        rec.bytes = bytes;
        rec.payload.resize(bytes);
        std::memcpy(rec.payload.data(), buf, bytes);
        rec.next_at_ns = now_ns() + w.rel_timeout_ns;
        self.retransmits.push_back(std::move(rec));
      }
    }
    counters_.eager_sends.fetch_add(1, std::memory_order_relaxed);
    sreq->done.store(true, std::memory_order_release);
    if (!lost) {
      Message m;
      m.src = rank_;
      m.tag = tag;
      m.bytes = bytes;
      m.staged.resize(bytes);
      std::memcpy(m.staged.data(), buf, bytes);
      m.reliable = true;
      m.seq = seq;
      if (held) {
        m.deliver_at_ns = now_ns() + extra_delay_ns;
        m.delayed = true;
        w.delayed_count.fetch_add(1, std::memory_order_acq_rel);
      }
      Mailbox& mb = *w.mailboxes[static_cast<std::size_t>(dest)];
      std::lock_guard<std::mutex> g(mb.mu);
      if (duplicate) {
        Message dup;
        dup.src = m.src;
        dup.tag = m.tag;
        dup.bytes = m.bytes;
        dup.staged = m.staged;
        dup.deliver_at_ns = m.deliver_at_ns;
        dup.delayed = m.delayed;
        dup.reliable = true;
        dup.seq = m.seq;
        if (dup.delayed) {
          w.delayed_count.fetch_add(1, std::memory_order_acq_rel);
        }
        mb.unexpected.push_back(std::move(dup));
      }
      mb.unexpected.push_back(std::move(m));
      w.match_mailbox(mb, now_ns());
    }
    return Request(std::move(sreq));
  }

  if (lost) {
    // Unreliable loss: the message is simply gone. An eager sender cannot
    // tell (its buffer was consumed); a rendezvous sender never completes,
    // the observable lost-handshake hang.
    if (bytes <= w.eager_threshold) {
      counters_.eager_sends.fetch_add(1, std::memory_order_relaxed);
      sreq->done.store(true, std::memory_order_release);
    } else {
      counters_.rendezvous_sends.fetch_add(1, std::memory_order_relaxed);
    }
    return Request(std::move(sreq));
  }

  Mailbox& mb = *w.mailboxes[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> g(mb.mu);
  if (!held) {
    // Non-overtaking: only match the *first* posted receive for (src,tag),
    // and only if no earlier message of this stream is still queued (a
    // held message must not be overtaken by this one).
    bool stream_queued = false;
    for (const Message& q : mb.unexpected) {
      if (q.src == rank_ && q.tag == tag) {
        stream_queued = true;
        break;
      }
    }
    if (!stream_queued) {
      for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
        if (it->src == rank_ && it->tag == tag) {
          TDG_REQUIRE(it->bytes >= bytes,
                      "isend: receive buffer too small");
          std::memcpy(it->buf, buf, bytes);
          it->rreq->done.store(true, std::memory_order_release);
          mb.posted.erase(it);
          sreq->done.store(true, std::memory_order_release);
          // direct copy: counts as eager completion
          counters_.eager_sends.fetch_add(1, std::memory_order_relaxed);
          return Request(std::move(sreq));
        }
      }
    }
  }
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.bytes = bytes;
  if (held) {
    m.deliver_at_ns = now_ns() + extra_delay_ns;
    m.delayed = true;
    w.delayed_count.fetch_add(1, std::memory_order_acq_rel);
  }
  if (bytes <= w.eager_threshold) {
    m.staged.resize(bytes);
    std::memcpy(m.staged.data(), buf, bytes);
    sreq->done.store(true, std::memory_order_release);
    counters_.eager_sends.fetch_add(1, std::memory_order_relaxed);
  } else {
    m.src_buf = buf;
    m.sreq = sreq;
    counters_.rendezvous_sends.fetch_add(1, std::memory_order_relaxed);
  }
  if (duplicate) {
    // Duplicate delivery fault: a second copy of the staged payload that
    // completes no request, but can satisfy a later same-(src,tag) receive
    // with stale data. Only meaningful for eager messages.
    Message dup;
    dup.src = m.src;
    dup.tag = m.tag;
    dup.bytes = m.bytes;
    dup.staged = m.staged;
    dup.deliver_at_ns = m.deliver_at_ns;
    dup.delayed = m.delayed;
    if (dup.delayed) {
      w.delayed_count.fetch_add(1, std::memory_order_acq_rel);
    }
    mb.unexpected.push_back(std::move(dup));
  }
  if (reorder && !mb.unexpected.empty() &&
      (mb.unexpected.back().src != rank_ ||
       mb.unexpected.back().tag != tag)) {
    // Reordering fault: jump ahead of the most recently queued message of
    // a different stream (per-stream non-overtaking stays intact).
    mb.unexpected.insert(mb.unexpected.end() - 1, std::move(m));
  } else {
    mb.unexpected.push_back(std::move(m));
  }
  return Request(std::move(sreq));
}

Request Comm::irecv(void* buf, std::size_t bytes, int src, int tag) {
  TDG_REQUIRE(src >= 0 && src < world_->nranks, "irecv: bad source");
  detail::World& w = *world_;
  if (w.kills_configured &&
      w.rank_state(rank_).dead.load(std::memory_order_relaxed)) {
    // This rank already executed its scheduled death; any task it still
    // runs must fail (and poison its dependents), never post work that
    // could wedge the drain.
    throw RankFailedError(rank_,
                          "irecv on killed rank " + std::to_string(rank_));
  }
  counters_.recvs.fetch_add(1, std::memory_order_relaxed);
  auto rreq = std::make_shared<ReqState>();
  rreq->kind = ReqKind::Recv;
  rreq->peer = src;
  rreq->tag = tag;
  rreq->bytes = bytes;
  rreq->world = world_;
  rreq->progress_rank = rank_;  // matching happens in our own mailbox
  if (w.comm_trace) {
    detail::RankState& self = w.rank_state(rank_);
    std::lock_guard<std::mutex> g(self.mu);
    rreq->trace_seq = ++self.trace_recv_seq[detail::skey(src, tag)];
  }
  Mailbox& mb = *w.mailboxes[static_cast<std::size_t>(rank_)];
  std::lock_guard<std::mutex> g(mb.mu);
  PostedRecv p{src, tag, bytes, buf, rreq};
  if (w.try_match(mb, p, now_ns())) {
    return Request(std::move(rreq));
  }
  if (w.hb.enabled) {
    // Fast-fail: a receive from a rank already known dead (or exited)
    // whose stream cannot produce the message will never complete.
    const RankStatus st = w.status_of(src);
    if ((st == RankStatus::Dead || st == RankStatus::Finished) &&
        !w.stream_can_satisfy(mb, p)) {
      detail::World::fail_req(rreq, src);
      return Request(std::move(rreq));
    }
  }
  mb.posted.push_back(std::move(p));
  return Request(std::move(rreq));
}

Request Comm::iallreduce(const double* sendbuf, double* recvbuf,
                         std::size_t count, Op op) {
  detail::World& w = *world_;
  if (w.kills_configured &&
      w.rank_state(rank_).dead.load(std::memory_order_relaxed)) {
    // A late contribution from a dead rank would resurrect a collective
    // slot the survivors already completed without it.
    throw RankFailedError(
        rank_, "iallreduce on killed rank " + std::to_string(rank_));
  }
  counters_.allreduces.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t slot_id = coll_seq_++;
  auto req = std::make_shared<ReqState>();
  req->kind = ReqKind::Collective;
  req->bytes = count * sizeof(double);
  if (w.comm_trace) {
    // Collectives match by per-rank call sequence already; reuse the slot
    // id (1-based) as the trace identity and stash it in tag for display.
    req->tag = static_cast<int>(slot_id);
    req->trace_seq = slot_id + 1;
  }
  std::lock_guard<std::mutex> g(w.coll_mu);
  detail::CollectiveSlot& slot = w.collectives[slot_id];
  if (slot.contributed == 0) {
    slot.op = op;
    slot.count = count;
    slot.by_rank.resize(static_cast<std::size_t>(w.nranks));
    slot.contributed_by.assign(static_cast<std::size_t>(w.nranks), 0);
  } else {
    TDG_REQUIRE(slot.count == count && slot.op == op,
                "iallreduce: mismatched count/op across ranks");
  }
  slot.by_rank[static_cast<std::size_t>(rank_)].assign(sendbuf,
                                                       sendbuf + count);
  slot.contributed_by[static_cast<std::size_t>(rank_)] = 1;
  slot.outs.push_back({rank_, recvbuf, req});
  ++slot.contributed;
  if (w.slot_ready(slot)) {
    w.complete_slot(slot);
    w.collectives.erase(slot_id);
  }
  return Request(std::move(req));
}

void Comm::barrier() {
  double in = 0, out = 0;
  allreduce(&in, &out, 1, Op::Sum);
}

void Comm::poll() const { world_->rank_poll(rank_); }

RankStatus Comm::rank_status(int r) const {
  TDG_REQUIRE(r >= 0 && r < world_->nranks, "rank_status: bad rank");
  return world_->status_of(r);
}

std::vector<RankInfo> Comm::rank_info() const {
  std::vector<RankInfo> out(static_cast<std::size_t>(world_->nranks));
  const std::uint64_t now = now_ns();
  for (int r = 0; r < world_->nranks; ++r) {
    detail::RankState& rs = world_->rank_state(r);
    RankInfo& ri = out[static_cast<std::size_t>(r)];
    ri.status = rs.status.load(std::memory_order_acquire);
    const std::uint64_t beat =
        rs.heartbeat_ns.load(std::memory_order_relaxed);
    ri.heartbeat_age_seconds =
        now > beat ? static_cast<double>(now - beat) * 1e-9 : 0.0;
  }
  return out;
}

int Comm::ranks_failed() const {
  return world_->stat_ranks_failed.load(std::memory_order_relaxed);
}

int Comm::nearest_alive(int from, int step) const {
  for (int r = from + step; r >= 0 && r < world_->nranks; r += step) {
    if (world_->status_of(r) != RankStatus::Dead) return r;
  }
  return -1;
}

namespace {
void throw_if_failed(const Request& r, int rank) {
  if (!r.failed()) return;
  throw RankFailedError(r.failed_rank(),
                        "rank " + std::to_string(rank) +
                            ": peer died during " + r.describe());
}
}  // namespace

void Comm::wait(const Request& r) const {
  if (world_->default_wait_deadline > 0.0) {
    wait_for(r, world_->default_wait_deadline);
    return;
  }
  while (!r.done()) {
    world_->rank_poll(rank_);
    std::this_thread::yield();
  }
  throw_if_failed(r, rank_);
}

void Comm::waitall(const std::vector<Request>& rs) const {
  for (const Request& r : rs) wait(r);
}

void Comm::wait_for(const Request& r, double deadline_seconds) const {
  const double t0 = now_seconds();
  while (!r.done()) {
    if (now_seconds() - t0 >= deadline_seconds) {
      char head[96];
      std::snprintf(head, sizeof head,
                    "Comm::wait_for: rank %d exceeded %.3fs deadline on ",
                    rank_, deadline_seconds);
      throw DeadlineError(std::string(head) + r.describe());
    }
    world_->rank_poll(rank_);
    std::this_thread::yield();
  }
  throw_if_failed(r, rank_);
}

void Comm::waitall_for(const std::vector<Request>& rs,
                       double deadline_seconds) const {
  const double t0 = now_seconds();
  for (const Request& r : rs) {
    while (!r.done()) {
      if (now_seconds() - t0 >= deadline_seconds) {
        std::string msg =
            "Comm::waitall_for: rank " + std::to_string(rank_) +
            " exceeded " + std::to_string(deadline_seconds) +
            "s deadline; pending:";
        for (const Request& p : rs) {
          if (!p.done()) msg += "\n  " + p.describe();
        }
        throw DeadlineError(std::move(msg));
      }
      world_->rank_poll(rank_);
      std::this_thread::yield();
    }
    throw_if_failed(r, rank_);
  }
}

FaultStats Comm::fault_stats() const {
  FaultStats s;
  s.delays = world_->stat_delays.load(std::memory_order_relaxed);
  s.duplicates = world_->stat_duplicates.load(std::memory_order_relaxed);
  s.reorders = world_->stat_reorders.load(std::memory_order_relaxed);
  s.straggler_delays =
      world_->stat_straggler_delays.load(std::memory_order_relaxed);
  s.drops = world_->stat_drops.load(std::memory_order_relaxed);
  s.kills = world_->stat_kills.load(std::memory_order_relaxed);
  return s;
}

ReliableStats Comm::reliable_stats() const {
  ReliableStats s;
  s.retransmits = world_->stat_retransmits.load(std::memory_order_relaxed);
  s.dup_suppressed =
      world_->stat_dup_suppressed.load(std::memory_order_relaxed);
  s.giveups = world_->stat_giveups.load(std::memory_order_relaxed);
  s.sends_to_dead =
      world_->stat_sends_to_dead.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Universe
// ---------------------------------------------------------------------------

void Universe::run(int nranks, const std::function<void(Comm&)>& fn,
                   Options opts, Report* report) {
  TDG_REQUIRE(nranks > 0, "Universe requires at least one rank");
  if (const char* env = std::getenv("TDG_FAULTS")) {
    if (*env != '\0' && !parse_fault_spec(env, opts.faults)) {
      std::fprintf(stderr, "tdg: malformed TDG_FAULTS spec '%s' ignored\n",
                   env);
    }
  }
  detail::World world;
  world.nranks = nranks;
  world.eager_threshold = opts.eager_threshold;
  world.default_wait_deadline = opts.default_wait_deadline_seconds;
  world.faults = opts.faults;
  world.faults_active = opts.faults.active();
  world.kills_configured = !opts.faults.kill_rank_at_send_seq.empty();
  world.reliable = opts.reliable;
  world.hb = opts.heartbeat;
  // Comm tracing follows the trace env so `TDG_TRACE=perfetto mpirun ...`
  // just works; opts.comm_trace forces it on for tests.
  world.comm_trace =
      opts.comm_trace || trace_env_config().mode != TraceMode::Off;
  world.resilient = world.kills_configured || world.reliable.enabled ||
                    world.hb.enabled;
  world.rel_timeout_ns =
      detail::seconds_to_ns(opts.reliable.retransmit_timeout_seconds);
  world.rel_scan_interval_ns = world.rel_timeout_ns / 4;
  world.mailboxes.reserve(static_cast<std::size_t>(nranks));
  world.rank_states.reserve(static_cast<std::size_t>(nranks));
  const std::uint64_t t0 = now_ns();
  for (int r = 0; r < nranks; ++r) {
    world.mailboxes.push_back(std::make_unique<Mailbox>());
    auto rs = std::make_unique<detail::RankState>();
    rs->heartbeat_ns.store(t0, std::memory_order_relaxed);
    world.rank_states.push_back(std::move(rs));
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  // Per-rank traffic snapshots, captured before each rank thread exits so
  // TDG_METRICS=dump can report them after the join.
  std::vector<CommStats> rank_stats(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, &rank_stats, r] {
      try {
        Comm comm(world, r);
        struct StatsCapture {
          Comm& c;
          CommStats& out;
          ~StatsCapture() { out = c.stats(); }
        } capture{comm, rank_stats[static_cast<std::size_t>(r)]};
        fn(comm);
        // Normal exit: push out any unacknowledged retransmissions, then
        // tell the detector this silence is retirement, not death.
        world.flush_rank(r);
        world.rank_state(r).finished.store(true, std::memory_order_seq_cst);
      } catch (...) {
        // Captured, not terminated: rethrown on the joining thread below
        // so distributed tests can assert on per-rank failures.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (metrics_env_mode() == MetricsEnvMode::Dump) {
    std::fprintf(stderr, "tdg: universe comm stats (%d ranks)\n", nranks);
    for (int r = 0; r < nranks; ++r) {
      const CommStats& s = rank_stats[static_cast<std::size_t>(r)];
      std::fprintf(stderr,
                   "  rank %d: sends=%llu (eager=%llu rendezvous=%llu) "
                   "recvs=%llu bytes_sent=%llu allreduces=%llu\n",
                   r, static_cast<unsigned long long>(s.sends),
                   static_cast<unsigned long long>(s.eager_sends),
                   static_cast<unsigned long long>(s.rendezvous_sends),
                   static_cast<unsigned long long>(s.recvs),
                   static_cast<unsigned long long>(s.bytes_sent),
                   static_cast<unsigned long long>(s.allreduces));
    }
  }
  // Drain unconditionally so successive universes in one process never
  // inherit each other's telemetry series.
  {
    const TelemetryConfig tcfg = telemetry_env_config();
    std::vector<RankTelemetry> telem = TelemetryHub::instance().drain();
    if (tcfg.dump && !telem.empty()) {
      std::ofstream os(tcfg.path);
      if (os) TelemetryHub::write_json(os, telem);
    }
    if (report != nullptr) report->telemetry = std::move(telem);
  }
  if (report != nullptr) {
    Comm probe(world, 0);
    report->faults = probe.fault_stats();
    report->reliable = probe.reliable_stats();
    report->ranks_failed = probe.ranks_failed();
    report->rank_status.clear();
    report->killed_ranks.clear();
    report->rank_errors.assign(static_cast<std::size_t>(nranks), "");
    for (int r = 0; r < nranks; ++r) {
      report->rank_status.push_back(world.status_of(r));
      if (world.rank_state(r).dead.load(std::memory_order_relaxed)) {
        report->killed_ranks.push_back(r);
      }
      if (errors[static_cast<std::size_t>(r)]) {
        report->rank_errors[static_cast<std::size_t>(r)] =
            describe_exception(errors[static_cast<std::size_t>(r)]);
      }
    }
  }
  for (int r = 0; r < nranks; ++r) {
    const std::exception_ptr& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    if (opts.tolerate_killed_ranks &&
        world.rank_state(r).dead.load(std::memory_order_relaxed)) {
      continue;  // a scheduled death; the Report carries it
    }
    std::rethrow_exception(e);
  }
}

}  // namespace tdg::mpi
