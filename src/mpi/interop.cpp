#include "mpi/interop.hpp"

#include "core/common.hpp"

namespace tdg::mpi {

void RequestPoller::complete_on_event(Request r, Event* ev, bool collective) {
  Tracked t;
  t.req = std::move(r);
  t.ev = ev;
  t.span.post_ns = now_ns();
  t.span.collective = collective;
  if (t.req.done()) {  // completed immediately (eager / already matched)
    t.span.complete_ns = t.span.post_ns;
    record_metrics(t);
    {
      std::lock_guard<std::mutex> g(mu_);
      done_.push_back(t.span);
    }
    ev->fulfill();
    return;
  }
  std::lock_guard<std::mutex> g(mu_);
  pending_.push_back(std::move(t));
}

void RequestPoller::poll() {
  // Collect fulfilled events outside the lock: fulfill() may complete a
  // task, whose successors could re-enter complete_on_event.
  std::vector<Event*> ready;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (std::size_t i = 0; i < pending_.size();) {
      if (pending_[i].req.done()) {
        pending_[i].span.complete_ns = now_ns();
        record_metrics(pending_[i]);
        done_.push_back(pending_[i].span);
        ready.push_back(pending_[i].ev);
        pending_[i] = std::move(pending_.back());
        pending_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (Event* ev : ready) ev->fulfill();
}

void RequestPoller::record_metrics(const Tracked& t) {
  MetricsRegistry& m = rt_->metrics();
  const unsigned shard = rt_->metrics_shard();
  m.add(m_requests_, 1, shard);
  if (t.span.collective) m.add(m_collectives_, 1, shard);
  m.add(m_bytes_, t.req.bytes(), shard);
  m.observe(m_wait_ns_, t.span.complete_ns - t.span.post_ns, shard);
}

std::vector<RequestSpan> RequestPoller::completed_spans() const {
  std::lock_guard<std::mutex> g(mu_);
  return done_;
}

std::size_t RequestPoller::pending() const {
  std::lock_guard<std::mutex> g(mu_);
  return pending_.size();
}

void RequestPoller::diagnostic(std::string& out) const {
  std::lock_guard<std::mutex> g(mu_);
  std::size_t shown = 0;
  for (const Tracked& t : pending_) {
    out += "\n  pending MPI request: " + t.req.describe();
    if (t.ev != nullptr && t.ev->task_id() != 0) {
      out += " (detach task '";
      out += t.ev->task_label();
      out += "', id " + std::to_string(t.ev->task_id()) + ")";
    }
    if (++shown == 16) {
      out += "\n  (more pending requests elided)";
      break;
    }
  }
}

}  // namespace tdg::mpi
