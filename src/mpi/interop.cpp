#include "mpi/interop.hpp"

#include <cstdio>
#include <exception>
#include <fstream>

#include "core/common.hpp"
#include "core/error.hpp"
#include "core/profiler.hpp"

namespace tdg::mpi {

RequestPoller::RequestPoller(Runtime& rt, Comm* comm)
    : rt_(&rt), comm_(comm) {
  hook_token_ = rt_->set_polling_hook([this] { poll(); });
  diag_token_ = rt_->watchdog().add_diagnostic(
      [this](std::string& out) { diagnostic(out); });
  // Registration is idempotent by name, so successive pollers on one
  // runtime (tests create several) accumulate into the same counters.
  MetricsRegistry& m = rt_->metrics();
  m_requests_ = m.counter("comm.requests");
  m_collectives_ = m.counter("comm.collectives");
  m_bytes_ = m.counter("comm.bytes");
  m_wait_ns_ = m.histogram("comm.wait_ns");
  if (comm_ != nullptr) {
    m_drops_ = m.counter("comm.drops_injected");
    m_kills_ = m.counter("comm.kills_injected");
    m_retransmits_ = m.counter("comm.retransmits");
    m_dup_sup_ = m.counter("comm.dup_suppressed");
    m_reroutes_ = m.counter("comm.reroutes");
    m_ranks_failed_ = m.gauge("universe.ranks_failed");
    diag_fault_base_ = comm_->fault_stats();
    diag_rel_base_ = comm_->reliable_stats();
    // Trace records and Perfetto tracks are keyed by rank; stamp the
    // profiler so TaskRecords carry it.
    rt_->profiler().set_rank(comm_->rank());
    telem_cfg_ = telemetry_env_config();
    if (telem_cfg_.enabled) {
      m_exec_tasks_ = m.counter("exec.tasks");
      telem_ring_ = TelemetryHub::instance().attach(comm_->rank(),
                                                    telem_cfg_.ring_capacity);
    }
  }
}

void RequestPoller::complete_on_event(Request r, Event* ev,
                                      TrackOpts opts) {
  Tracked t;
  t.req = std::move(r);
  t.ev = ev;
  t.opts = std::move(opts);
  t.span.post_ns = now_ns();
  t.span.collective = t.opts.collective;
  if (t.req.done()) {  // completed immediately (eager / already matched)
    if (t.req.failed()) {
      handle_failed(std::move(t));
      return;
    }
    t.span.complete_ns = t.span.post_ns;
    record_metrics(t);
    {
      std::lock_guard<std::mutex> g(mu_);
      done_.push_back(t.span);
    }
    ev->fulfill();
    return;
  }
  std::lock_guard<std::mutex> g(mu_);
  pending_.push_back(std::move(t));
}

void RequestPoller::poll() {
  if (comm_ != nullptr) {
    comm_->poll();  // heartbeat + retransmissions + failure detection
    sync_comm_metrics();
    maybe_sample_telemetry();
  }
  // Collect fulfilled events outside the lock: fulfill() may complete a
  // task, whose successors could re-enter complete_on_event. Failed
  // requests are resolved outside it too — recovery callbacks post new
  // requests, and poisoning completes tasks.
  std::vector<Event*> ready;
  std::vector<Tracked> failed;
  {
    std::lock_guard<std::mutex> g(mu_);
    for (std::size_t i = 0; i < pending_.size();) {
      if (!pending_[i].req.done()) {
        ++i;
        continue;
      }
      if (pending_[i].req.failed()) {
        failed.push_back(std::move(pending_[i]));
      } else {
        pending_[i].span.complete_ns = now_ns();
        record_metrics(pending_[i]);
        done_.push_back(pending_[i].span);
        ready.push_back(pending_[i].ev);
      }
      pending_[i] = std::move(pending_.back());
      pending_.pop_back();
    }
  }
  for (Event* ev : ready) ev->fulfill();
  for (Tracked& t : failed) handle_failed(std::move(t));
}

void RequestPoller::handle_failed(Tracked t) {
  const int dead = t.req.failed_rank();
  const unsigned shard = rt_->metrics_shard();
  if (t.opts.on_peer_failed) {
    Request repl = t.opts.on_peer_failed(dead);
    if (repl.valid()) {
      // Rerouted to a survivor: keep tracking under the same event (the
      // replacement may itself fail and reroute again).
      rt_->metrics().add(m_reroutes_, 1, shard);
      t.req = std::move(repl);
      std::lock_guard<std::mutex> g(mu_);
      pending_.push_back(std::move(t));
      return;
    }
  }
  if (t.opts.fulfill_on_giveup && t.ev != nullptr &&
      t.ev->task_idempotent()) {
    // Idempotent shard completes locally with the data it has; counted as
    // a reroute (the dependence was re-pointed at local state).
    rt_->metrics().add(m_reroutes_, 1, shard);
    t.span.complete_ns = now_ns();
    record_metrics(t);
    {
      std::lock_guard<std::mutex> g(mu_);
      done_.push_back(t.span);
    }
    t.ev->fulfill();
    return;
  }
  if (t.ev != nullptr) {
    t.ev->poison(std::make_exception_ptr(RankFailedError(
        dead, "rank " + std::to_string(dead) + " failed during " +
                  t.req.describe())));
  }
}

void RequestPoller::record_metrics(const Tracked& t) {
  MetricsRegistry& m = rt_->metrics();
  const unsigned shard = rt_->metrics_shard();
  m.add(m_requests_, 1, shard);
  if (t.span.collective) m.add(m_collectives_, 1, shard);
  m.add(m_bytes_, t.req.bytes(), shard);
  m.observe(m_wait_ns_, t.span.complete_ns - t.span.post_ns, shard);
  // Comm event for the trace stream: the (src,dst,tag,seq) key lets the
  // exporter pair this record with its remote counterpart as a flow arrow.
  // record_comm itself is gated on trace_enabled(), and the profiler's
  // spin lock is a leaf — safe under our mu_.
  Profiler& prof = rt_->profiler();
  if (prof.trace_enabled()) {
    CommRecord c;
    c.kind = t.req.is_recv()         ? CommRecord::Kind::Recv
             : t.req.is_collective() ? CommRecord::Kind::Collective
                                     : CommRecord::Kind::Send;
    c.self = comm_ != nullptr ? comm_->rank() : 0;
    c.peer = t.req.peer();
    c.tag = t.req.tag();
    c.seq = t.req.trace_seq();
    c.bytes = t.req.bytes();
    c.t_post = t.span.post_ns;
    c.t_complete = t.span.complete_ns;
    c.retransmits =
        comm_ != nullptr
            ? static_cast<std::uint32_t>(comm_->reliable_stats().retransmits)
            : 0;
    c.task_id = t.ev != nullptr ? t.ev->task_id() : 0;
    prof.record_comm(c);
  }
}

void RequestPoller::maybe_sample_telemetry() {
  if (!telem_ring_) return;
  const std::uint64_t now = now_ns();
  std::uint64_t last = telem_last_ns_.load(std::memory_order_relaxed);
  if (now - last < telem_cfg_.period_ns) return;
  // One sampler wins the period; losers skip rather than queue up.
  if (!telem_last_ns_.compare_exchange_strong(last, now,
                                              std::memory_order_relaxed)) {
    return;
  }
  const CommStats cs = comm_->stats();
  const FaultStats f = comm_->fault_stats();
  const ReliableStats rl = comm_->reliable_stats();
  TelemetrySample s;
  s.t_ns = now;
  s.tasks_executed = rt_->metrics().read(m_exec_tasks_);
  s.tasks_ready = rt_->ready_tasks();
  s.sends = cs.sends;
  s.recvs = cs.recvs;
  s.bytes_sent = cs.bytes_sent;
  s.allreduces = cs.allreduces;
  s.retransmits = rl.retransmits;
  s.dup_suppressed = rl.dup_suppressed;
  s.giveups = rl.giveups;
  s.drops_injected = f.drops;
  s.ranks_failed = comm_->ranks_failed();
  telem_ring_->push(s);
}

void RequestPoller::sync_comm_metrics() {
  const std::uint64_t now = now_ns();
  std::unique_lock<std::mutex> g(sync_mu_, std::try_to_lock);
  if (!g.owns_lock()) return;
  if (now - last_sync_ns_ < 1000000) return;  // 1ms gate
  last_sync_ns_ = now;
  const FaultStats f = comm_->fault_stats();
  const ReliableStats rl = comm_->reliable_stats();
  const int rf = comm_->ranks_failed();
  MetricsRegistry& m = rt_->metrics();
  const unsigned shard = rt_->metrics_shard();
  m.add(m_drops_, f.drops - fault_base_.drops, shard);
  m.add(m_kills_, f.kills - fault_base_.kills, shard);
  m.add(m_retransmits_, rl.retransmits - rel_base_.retransmits, shard);
  m.add(m_dup_sup_, rl.dup_suppressed - rel_base_.dup_suppressed, shard);
  m.gauge_add(m_ranks_failed_, rf - ranks_failed_base_, shard);
  fault_base_ = f;
  rel_base_ = rl;
  ranks_failed_base_ = rf;
}

std::vector<RequestSpan> RequestPoller::completed_spans() const {
  std::lock_guard<std::mutex> g(mu_);
  return done_;
}

std::size_t RequestPoller::pending() const {
  std::lock_guard<std::mutex> g(mu_);
  return pending_.size();
}

void RequestPoller::diagnostic(std::string& out) const {
  {
    std::lock_guard<std::mutex> g(mu_);
    std::size_t shown = 0;
    for (const Tracked& t : pending_) {
      out += "\n  pending MPI request: " + t.req.describe();
      if (t.ev != nullptr && t.ev->task_id() != 0) {
        out += " (detach task '";
        out += t.ev->task_label();
        out += "', id " + std::to_string(t.ev->task_id()) + ")";
      }
      if (++shown == 16) {
        out += "\n  (more pending requests elided)";
        break;
      }
    }
  }
  if (comm_ == nullptr) return;
  const std::vector<RankInfo> info = comm_->rank_info();
  for (std::size_t r = 0; r < info.size(); ++r) {
    char line[96];
    std::snprintf(line, sizeof line,
                  "\n  rank %zu: %s (heartbeat %.3fs ago)", r,
                  to_string(info[r].status),
                  info[r].heartbeat_age_seconds);
    out += line;
  }
  const FaultStats f = comm_->fault_stats();
  const ReliableStats rl = comm_->reliable_stats();
  char line[176];
  std::snprintf(
      line, sizeof line,
      "\n  injected faults since arming: drops=%llu kills=%llu | "
      "reliable: retransmits=%llu dup_suppressed=%llu giveups=%llu",
      static_cast<unsigned long long>(f.drops - diag_fault_base_.drops),
      static_cast<unsigned long long>(f.kills - diag_fault_base_.kills),
      static_cast<unsigned long long>(rl.retransmits -
                                      diag_rel_base_.retransmits),
      static_cast<unsigned long long>(rl.dup_suppressed -
                                      diag_rel_base_.dup_suppressed),
      static_cast<unsigned long long>(rl.giveups - diag_rel_base_.giveups));
  out += line;
  if (telem_ring_) {
    // The last few samples show the counter trajectory into the hang.
    const std::vector<TelemetrySample> samples = telem_ring_->snapshot();
    const std::size_t n = samples.size();
    for (std::size_t i = n > 3 ? n - 3 : 0; i < n; ++i) {
      const TelemetrySample& s = samples[i];
      char tl[160];
      std::snprintf(tl, sizeof tl,
                    "\n  telemetry t=%llu: tasks=%llu sends=%llu "
                    "recvs=%llu retransmits=%llu ranks_failed=%lld",
                    static_cast<unsigned long long>(s.t_ns),
                    static_cast<unsigned long long>(s.tasks_executed),
                    static_cast<unsigned long long>(s.sends),
                    static_cast<unsigned long long>(s.recvs),
                    static_cast<unsigned long long>(s.retransmits),
                    static_cast<long long>(s.ranks_failed));
      out += tl;
    }
    if (telem_cfg_.dump) {
      // Watchdog fired: persist the full time-series now, in case the
      // process is about to be killed and never reaches Universe exit.
      std::ofstream os(telem_cfg_.path);
      if (os) {
        TelemetryHub::write_json(os, TelemetryHub::instance().collect());
        out += "\n  telemetry time-series dumped to " + telem_cfg_.path;
      }
    }
  }
}

}  // namespace tdg::mpi
