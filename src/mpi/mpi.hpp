// In-process MPI-like message-passing substrate: ranks are threads of one
// process, exchanging messages through matched mailboxes.
//
// This reproduces the MPI semantics the paper's interoperability study
// depends on: nonblocking point-to-point with an eager protocol below a
// size threshold and a rendezvous protocol above it (Section 4.1: O(1) and
// O(s) byte requests are eager, O(s^2) use rendezvous), nonblocking
// allreduce collectives, and test/wait progress probing suitable for
// polling at OpenMP scheduling points.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tdg::mpi {

/// Reduction operator for allreduce.
enum class Op { Min, Max, Sum };

namespace detail {
/// Operation kind, for diagnostics.
enum class ReqKind : std::uint8_t { None, Send, Recv, Collective };
struct World;
struct ReqState {
  std::atomic<bool> done{false};
  // Diagnostic metadata (written once at post time, before the request
  // handle escapes) and the mailbox progress is driven through when
  // fault-injected delays are in flight.
  ReqKind kind = ReqKind::None;
  int peer = -1;   ///< dest for sends, src for recvs
  int tag = -1;
  std::size_t bytes = 0;
  World* world = nullptr;
  int progress_rank = -1;  ///< mailbox to progress while polling (-1: none)
};
}  // namespace detail

/// Handle to a nonblocking operation. Copyable; all copies observe the same
/// completion state.
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }
  /// True once the operation has completed (buffer reusable / data
  /// delivered). Does not block. When a fault plan holds delayed messages,
  /// polling also drives delivery of any that have become due.
  bool done() const;
  /// Human-readable description of the operation, e.g.
  /// "irecv src=1 tag=7 bytes=8" (watchdog / DeadlineError diagnostics).
  std::string describe() const;
  /// Payload size of the operation (0 for an invalid request; element
  /// bytes for collectives).
  std::size_t bytes() const { return state_ ? state_->bytes : 0; }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::ReqState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ReqState> state_;
};

/// Deterministic fault injection (Universe::Options::faults): a seeded
/// plan perturbing message delivery so retry / timeout / cancellation
/// paths are testable without real hardware faults. All decisions are
/// drawn from a per-sender-rank counter-based RNG, so a given (seed, rank,
/// send-sequence) triple always yields the same faults regardless of
/// thread interleaving. Collectives are never perturbed.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Probability that a point-to-point message is held for
  /// `delay_seconds` before it becomes matchable at the receiver.
  double delay_probability = 0.0;
  double delay_seconds = 0.0;
  /// Probability that an eager message is delivered twice (the duplicate
  /// can satisfy a later same-(src,tag) receive with stale data).
  double duplicate_probability = 0.0;
  /// Probability that a message is enqueued ahead of the previously
  /// queued message from a *different* (src, tag) stream (per-stream
  /// non-overtaking is preserved, as MPI guarantees).
  double reorder_probability = 0.0;
  /// Every message sent by these ranks is additionally delayed by
  /// `straggler_delay_seconds` (models a slow node).
  std::vector<int> straggler_ranks;
  double straggler_delay_seconds = 0.0;

  bool active() const {
    return delay_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 ||
           (!straggler_ranks.empty() && straggler_delay_seconds > 0.0);
  }
};

/// Counters of fault *decisions* drawn (whole universe, read after
/// quiescence). Deterministic for a given seed and send sequence; whether
/// a drawn duplicate/reorder is physically applied can additionally
/// depend on mailbox state at send time.
struct FaultStats {
  std::uint64_t delays = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t straggler_delays = 0;
};

/// Traffic counters for one rank (communication-profiling substrate).
/// Snapshot type; the live counters are relaxed atomics because tasks on
/// any worker thread of the rank's runtime may post operations.
struct CommStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t eager_sends = 0;
  std::uint64_t rendezvous_sends = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduces = 0;
};

/// A communicator bound to one rank of a Universe. All members may be
/// called only from that rank's thread (like an MPI process), except
/// `test`, which is thread-safe so OpenMP workers can poll requests.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Nonblocking send. Eager below the universe's threshold (the payload
  /// is staged; the request completes immediately), rendezvous above it
  /// (the request completes when the receiver matches and copies).
  Request isend(const void* buf, std::size_t bytes, int dest, int tag);
  /// Nonblocking receive with exact (src, tag) matching, non-overtaking.
  Request irecv(void* buf, std::size_t bytes, int src, int tag);

  /// Nonblocking elementwise allreduce over doubles. All ranks must call
  /// with the same count and op; calls match by per-rank sequence number.
  Request iallreduce(const double* sendbuf, double* recvbuf,
                     std::size_t count, Op op);

  /// Blocking helpers.
  void send(const void* buf, std::size_t bytes, int dest, int tag) {
    wait(isend(buf, bytes, dest, tag));
  }
  void recv(void* buf, std::size_t bytes, int src, int tag) {
    wait(irecv(buf, bytes, src, tag));
  }
  void allreduce(const double* sendbuf, double* recvbuf, std::size_t count,
                 Op op) {
    wait(iallreduce(sendbuf, recvbuf, count, op));
  }
  void barrier();

  /// Thread-safe completion probe (MPI_Test).
  static bool test(const Request& r) { return r.done(); }
  /// Spin-wait with yield (MPI_Wait). If the universe sets a default wait
  /// deadline, behaves as wait_for with that deadline (hang watchdog).
  void wait(const Request& r) const;
  void waitall(const std::vector<Request>& rs) const;

  /// Deadline-aware waits: spin until the request completes or
  /// `deadline_seconds` elapse, then throw tdg::DeadlineError whose report
  /// names the pending operation — e.g. "irecv src=1 tag=7 bytes=8" for a
  /// never-matched receive.
  void wait_for(const Request& r, double deadline_seconds) const;
  void waitall_for(const std::vector<Request>& rs,
                   double deadline_seconds) const;

  CommStats stats() const {
    CommStats s;
    s.sends = counters_.sends.load(std::memory_order_relaxed);
    s.recvs = counters_.recvs.load(std::memory_order_relaxed);
    s.eager_sends = counters_.eager_sends.load(std::memory_order_relaxed);
    s.rendezvous_sends =
        counters_.rendezvous_sends.load(std::memory_order_relaxed);
    s.bytes_sent = counters_.bytes_sent.load(std::memory_order_relaxed);
    s.allreduces = counters_.allreduces.load(std::memory_order_relaxed);
    return s;
  }
  /// Universe-wide injected-fault counters (see Options::faults).
  FaultStats fault_stats() const;

 private:
  friend class Universe;
  Comm(detail::World& world, int rank) : world_(&world), rank_(rank) {}

  struct Counters {
    std::atomic<std::uint64_t> sends{0};
    std::atomic<std::uint64_t> recvs{0};
    std::atomic<std::uint64_t> eager_sends{0};
    std::atomic<std::uint64_t> rendezvous_sends{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> allreduces{0};
  };

  detail::World* world_;
  int rank_;
  std::uint64_t coll_seq_ = 0;
  Counters counters_;
};

/// A set of ranks running as threads of this process.
class Universe {
 public:
  struct Options {
    std::size_t eager_threshold = 8 * 1024;  ///< bytes
    /// Deterministic fault injection (delays / duplicates / reordering /
    /// stragglers); inactive by default.
    FaultPlan faults;
    /// When > 0, plain Comm::wait/waitall throw tdg::DeadlineError after
    /// this many seconds without completion (0 = wait forever).
    double default_wait_deadline_seconds = 0.0;
  };

  /// Spawn `nranks` threads, run `fn(comm)` on each, join. If rank
  /// functions throw, the exception of the lowest-numbered failing rank is
  /// rethrown on the joining thread after every rank has exited, so
  /// distributed tests can assert on failures instead of terminating.
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  Options opts);
  static void run(int nranks, const std::function<void(Comm&)>& fn) {
    run(nranks, fn, Options{});
  }
};

}  // namespace tdg::mpi
