// In-process MPI-like message-passing substrate: ranks are threads of one
// process, exchanging messages through matched mailboxes.
//
// This reproduces the MPI semantics the paper's interoperability study
// depends on: nonblocking point-to-point with an eager protocol below a
// size threshold and a rendezvous protocol above it (Section 4.1: O(1) and
// O(s) byte requests are eager, O(s^2) use rendezvous), nonblocking
// allreduce collectives, and test/wait progress probing suitable for
// polling at OpenMP scheduling points.
//
// Resilience extensions (DESIGN.md "Failure model"): a deterministic
// fault plan can drop messages and kill ranks mid-send; an optional
// reliable-delivery mode (sequence numbers, acks, timeout+backoff
// retransmission, duplicate suppression) masks losses; an optional
// heartbeat failure detector classifies ranks Alive/Suspected/Dead and
// fails receives from dead ranks fast with tdg::RankFailedError.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/telemetry.hpp"

namespace tdg::mpi {

/// Reduction operator for allreduce.
enum class Op { Min, Max, Sum };

/// Liveness of one rank as seen by the heartbeat failure detector.
/// Dead is terminal: the detector never resurrects a rank (a falsely
/// suspected rank that was merely slow is expelled, ULFM-style).
enum class RankStatus : std::uint8_t { Alive, Suspected, Dead, Finished };

inline const char* to_string(RankStatus s) {
  switch (s) {
    case RankStatus::Alive:
      return "alive";
    case RankStatus::Suspected:
      return "suspected";
    case RankStatus::Dead:
      return "dead";
    case RankStatus::Finished:
      return "finished";
  }
  return "?";
}

/// One rank's detector view plus the age of its last heartbeat.
struct RankInfo {
  RankStatus status = RankStatus::Alive;
  double heartbeat_age_seconds = 0.0;
};

namespace detail {
/// Operation kind, for diagnostics.
enum class ReqKind : std::uint8_t { None, Send, Recv, Collective };
struct World;
struct ReqState {
  std::atomic<bool> done{false};
  /// Completed exceptionally: the peer rank died before the operation
  /// could finish. `failed_rank` is written before the release store.
  std::atomic<bool> failed{false};
  int failed_rank = -1;
  // Diagnostic metadata (written once at post time, before the request
  // handle escapes) and the mailbox progress is driven through when
  // fault-injected delays are in flight.
  ReqKind kind = ReqKind::None;
  int peer = -1;   ///< dest for sends, src for recvs
  int tag = -1;
  std::size_t bytes = 0;
  /// 1-based per-(src, dst, tag) stream sequence assigned at post time
  /// when the universe records comm traces (Options::comm_trace or an
  /// active TDG_TRACE); 0 otherwise. Both sides of a stream count their
  /// own posts, so non-overtaking delivery makes the nth send and the
  /// nth receive share it — the (src, dst, tag, seq) message identity of
  /// the distributed trace.
  std::uint64_t trace_seq = 0;
  World* world = nullptr;
  int progress_rank = -1;  ///< mailbox to progress while polling (-1: none)
};
}  // namespace detail

/// Handle to a nonblocking operation. Copyable; all copies observe the same
/// completion state.
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }
  /// True once the operation has completed (buffer reusable / data
  /// delivered) or failed. Does not block. When a fault plan holds delayed
  /// messages, polling also drives delivery of any that have become due.
  bool done() const;
  /// True when the operation completed exceptionally because a peer rank
  /// died; `failed_rank()` names it. Waiting on a failed request throws
  /// tdg::RankFailedError.
  bool failed() const {
    return state_ != nullptr &&
           state_->failed.load(std::memory_order_acquire);
  }
  int failed_rank() const { return failed() ? state_->failed_rank : -1; }
  /// Human-readable description of the operation, e.g.
  /// "irecv src=1 tag=7 bytes=8" (watchdog / DeadlineError diagnostics).
  std::string describe() const;
  /// Payload size of the operation (0 for an invalid request; element
  /// bytes for collectives).
  std::size_t bytes() const { return state_ ? state_->bytes : 0; }

  // --- trace metadata (comm-event tracing; see Profiler::record_comm) ---
  bool is_send() const {
    return state_ && state_->kind == detail::ReqKind::Send;
  }
  bool is_recv() const {
    return state_ && state_->kind == detail::ReqKind::Recv;
  }
  bool is_collective() const {
    return state_ && state_->kind == detail::ReqKind::Collective;
  }
  /// Dest for sends, src for recvs, -1 for collectives / invalid.
  int peer() const { return state_ ? state_->peer : -1; }
  /// Message tag (the collective slot id for collectives).
  int tag() const { return state_ ? state_->tag : -1; }
  /// Stream sequence number (see detail::ReqState::trace_seq); 0 when the
  /// universe is not recording comm traces.
  std::uint64_t trace_seq() const { return state_ ? state_->trace_seq : 0; }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::ReqState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ReqState> state_;
};

/// Deterministic fault injection (Universe::Options::faults): a seeded
/// plan perturbing message delivery so retry / timeout / cancellation
/// paths are testable without real hardware faults. All decisions are
/// drawn from a per-sender-rank counter-based RNG, so a given (seed, rank,
/// send-sequence) triple always yields the same faults regardless of
/// thread interleaving. Collectives are never perturbed.
struct FaultPlan {
  std::uint64_t seed = 1;
  /// Probability that a point-to-point message is held for
  /// `delay_seconds` before it becomes matchable at the receiver.
  double delay_probability = 0.0;
  double delay_seconds = 0.0;
  /// Probability that an eager message is delivered twice (the duplicate
  /// can satisfy a later same-(src,tag) receive with stale data — unless
  /// reliable delivery is on, where sequence numbers suppress it and the
  /// injection becomes the exactly-once oracle).
  double duplicate_probability = 0.0;
  /// Probability that a message is enqueued ahead of the previously
  /// queued message from a *different* (src, tag) stream (per-stream
  /// non-overtaking is preserved, as MPI guarantees).
  double reorder_probability = 0.0;
  /// Probability that a transmission is dropped outright. Without
  /// reliable delivery the message is simply gone (a rendezvous sender
  /// then never completes — the lost-handshake hang is observable via
  /// wait_for); with it, the retransmission path masks the loss.
  /// Drawn only when > 0, so plans without loss keep their exact
  /// pre-existing decision stream.
  double loss_probability = 0.0;
  /// Kill schedule: {rank, n} makes `rank` die when it posts its n-th
  /// point-to-point send (1-based), throwing tdg::RankFailedError out of
  /// that isend. The rank's posted receives and in-flight rendezvous
  /// buffers are invalidated before the throw.
  std::vector<std::pair<int, std::uint64_t>> kill_rank_at_send_seq;
  /// Every message sent by these ranks is additionally delayed by
  /// `straggler_delay_seconds` (models a slow node).
  std::vector<int> straggler_ranks;
  double straggler_delay_seconds = 0.0;

  bool active() const {
    return delay_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || loss_probability > 0.0 ||
           !kill_rank_at_send_seq.empty() ||
           (!straggler_ranks.empty() && straggler_delay_seconds > 0.0);
  }
};

/// Parse a fault-plan spec string into `fp` (fields not named keep their
/// current values). Grammar: comma-separated `key=value` with keys
///   seed=N  loss=P  dup=P  reorder=P  delay=P:S  straggler=R@S  kill=R@N
/// (`kill` may repeat). This is the TDG_FAULTS env format; Universe::run
/// applies the env on top of Options::faults. Returns false on a
/// malformed spec (fp may be partially updated).
bool parse_fault_spec(const std::string& spec, FaultPlan& fp);

/// Counters of fault *decisions* drawn (whole universe, read after
/// quiescence). Deterministic for a given seed and send sequence; whether
/// a drawn duplicate/reorder is physically applied can additionally
/// depend on mailbox state at send time.
struct FaultStats {
  std::uint64_t delays = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t straggler_delays = 0;
  std::uint64_t drops = 0;  ///< lost transmissions (incl. lost retransmits)
  std::uint64_t kills = 0;  ///< rank deaths executed
};

/// Reliable-delivery layer counters (whole universe).
struct ReliableStats {
  std::uint64_t retransmits = 0;     ///< re-enqueued copies (incl. re-lost)
  std::uint64_t dup_suppressed = 0;  ///< stale-seq deliveries discarded
  std::uint64_t giveups = 0;         ///< records dropped (max attempts/dead)
  std::uint64_t sends_to_dead = 0;   ///< sends discarded: dest known dead
};

/// Reliable-delivery knobs (Universe::Options). Off by default; when off
/// no per-message work is added. When on, every point-to-point payload is
/// staged (store-and-forward: rendezvous sends complete at post, like
/// eager), each (dest, tag) stream carries a sequence number, delivery is
/// acknowledged at mailbox enqueue (the shared-memory analogue of a
/// piggybacked transport ack), and unacked transmissions are re-sent
/// after `retransmit_timeout_seconds * backoff_multiplier^attempt`.
/// Receivers deliver streams strictly in sequence order and discard
/// duplicates, so the app observes exactly-once, in-order delivery under
/// loss + duplicate injection.
struct ReliableConfig {
  bool enabled = false;
  double retransmit_timeout_seconds = 0.02;
  double backoff_multiplier = 2.0;
  int max_retransmits = 12;
};

/// Heartbeat failure detector knobs (Universe::Options). Each rank
/// publishes a heartbeat from Comm::poll() and the blocking waits; any
/// rank's poll advances the shared detector, which marks a rank Suspected
/// after `suspect_seconds` without a heartbeat and Dead after
/// `fail_seconds`. Death is terminal and triggers recovery: posted
/// receives from the dead rank that no queued message can satisfy fail
/// fast, and collectives complete over the survivors. Ranks must poll at
/// least every `fail_seconds` (the runtime polling hook does this at
/// scheduling points) or they will be falsely expelled.
struct HeartbeatConfig {
  bool enabled = false;
  double period_seconds = 0.002;
  double suspect_seconds = 0.05;
  double fail_seconds = 0.2;
};

/// Traffic counters for one rank (communication-profiling substrate).
/// Snapshot type; the live counters are relaxed atomics because tasks on
/// any worker thread of the rank's runtime may post operations.
struct CommStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t eager_sends = 0;
  std::uint64_t rendezvous_sends = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduces = 0;
};

/// A communicator bound to one rank of a Universe. All members may be
/// called only from that rank's thread (like an MPI process), except
/// `test`, `poll` and the status accessors, which are thread-safe so
/// OpenMP workers can poll requests and drive progress.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Nonblocking send. Eager below the universe's threshold (the payload
  /// is staged; the request completes immediately), rendezvous above it
  /// (the request completes when the receiver matches and copies). Under
  /// reliable delivery every payload is staged. A send to a rank the
  /// detector has declared dead is discarded (fire-and-forget) and
  /// completes immediately.
  Request isend(const void* buf, std::size_t bytes, int dest, int tag);
  /// Nonblocking receive with exact (src, tag) matching, non-overtaking.
  /// Fails fast (Request::failed) when `src` is already known dead and no
  /// queued message can satisfy it.
  Request irecv(void* buf, std::size_t bytes, int src, int tag);

  /// Nonblocking elementwise allreduce over doubles. All ranks must call
  /// with the same count and op; calls match by per-rank sequence number.
  /// Ranks the detector declares dead are excused: the reduction
  /// completes over the survivors' contributions (in rank order).
  Request iallreduce(const double* sendbuf, double* recvbuf,
                     std::size_t count, Op op);

  /// Blocking helpers.
  void send(const void* buf, std::size_t bytes, int dest, int tag) {
    wait(isend(buf, bytes, dest, tag));
  }
  void recv(void* buf, std::size_t bytes, int src, int tag) {
    wait(irecv(buf, bytes, src, tag));
  }
  void allreduce(const double* sendbuf, double* recvbuf, std::size_t count,
                 Op op) {
    wait(iallreduce(sendbuf, recvbuf, count, op));
  }
  void barrier();

  /// Thread-safe completion probe (MPI_Test).
  static bool test(const Request& r) { return r.done(); }
  /// Spin-wait with yield (MPI_Wait). If the universe sets a default wait
  /// deadline, behaves as wait_for with that deadline (hang watchdog).
  /// Throws tdg::RankFailedError if the request failed (peer died).
  void wait(const Request& r) const;
  void waitall(const std::vector<Request>& rs) const;

  /// Deadline-aware waits: spin until the request completes or
  /// `deadline_seconds` elapse, then throw tdg::DeadlineError whose report
  /// names the pending operation — e.g. "irecv src=1 tag=7 bytes=8" for a
  /// never-matched receive.
  void wait_for(const Request& r, double deadline_seconds) const;
  void waitall_for(const std::vector<Request>& rs,
                   double deadline_seconds) const;

  /// Drive this rank's resilience machinery once: publish a heartbeat,
  /// scan this rank's retransmission records, advance the shared failure
  /// detector, deliver due delayed messages. Cheap (one branch) when no
  /// resilience feature is on; safe from any thread of this rank's
  /// runtime, and never throws (it runs during failure drains).
  void poll() const;

  /// Detector view of rank `r` (thread-safe).
  RankStatus rank_status(int r) const;
  /// Detector view + heartbeat age of every rank (thread-safe).
  std::vector<RankInfo> rank_info() const;
  /// True when the detector has declared `r` dead.
  bool rank_failed(int r) const {
    return rank_status(r) == RankStatus::Dead;
  }
  /// Number of ranks the detector has declared dead.
  int ranks_failed() const;
  /// First rank in direction `step` (+1 / -1) from `from` the detector
  /// does not consider dead, or -1 when the chain ends (topology helper
  /// for shrink-and-redistribute neighbour remapping).
  int nearest_alive(int from, int step) const;

  CommStats stats() const {
    CommStats s;
    s.sends = counters_.sends.load(std::memory_order_relaxed);
    s.recvs = counters_.recvs.load(std::memory_order_relaxed);
    s.eager_sends = counters_.eager_sends.load(std::memory_order_relaxed);
    s.rendezvous_sends =
        counters_.rendezvous_sends.load(std::memory_order_relaxed);
    s.bytes_sent = counters_.bytes_sent.load(std::memory_order_relaxed);
    s.allreduces = counters_.allreduces.load(std::memory_order_relaxed);
    return s;
  }
  /// Universe-wide injected-fault counters (see Options::faults).
  FaultStats fault_stats() const;
  /// Universe-wide reliable-delivery counters (see ReliableConfig).
  ReliableStats reliable_stats() const;

 private:
  friend class Universe;
  Comm(detail::World& world, int rank) : world_(&world), rank_(rank) {}

  struct Counters {
    std::atomic<std::uint64_t> sends{0};
    std::atomic<std::uint64_t> recvs{0};
    std::atomic<std::uint64_t> eager_sends{0};
    std::atomic<std::uint64_t> rendezvous_sends{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> allreduces{0};
  };

  detail::World* world_;
  int rank_;
  std::uint64_t coll_seq_ = 0;
  Counters counters_;
};

/// A set of ranks running as threads of this process.
class Universe {
 public:
  struct Options {
    std::size_t eager_threshold = 8 * 1024;  ///< bytes
    /// Deterministic fault injection (delays / duplicates / reordering /
    /// loss / kills / stragglers); inactive by default. The TDG_FAULTS
    /// environment variable (see parse_fault_spec) overrides fields on
    /// top of this plan.
    FaultPlan faults;
    /// When > 0, plain Comm::wait/waitall throw tdg::DeadlineError after
    /// this many seconds without completion (0 = wait forever).
    double default_wait_deadline_seconds = 0.0;
    /// Ack/retransmit reliable delivery; off by default (zero overhead).
    ReliableConfig reliable;
    /// Heartbeat failure detector; off by default (zero overhead).
    HeartbeatConfig heartbeat;
    /// When true, an exception escaping a rank that the fault plan killed
    /// is recorded in the Report instead of rethrown from run() — chaos
    /// tests assert on survivors, not on the scheduled death. Exceptions
    /// from ranks that were *not* killed always rethrow.
    bool tolerate_killed_ranks = false;
    /// Assign per-(src, dst, tag) stream sequence numbers to requests so
    /// comm-event traces can match send/recv pairs across ranks. Also
    /// switched on automatically while TDG_TRACE selects a trace format.
    bool comm_trace = false;
  };

  /// Post-mortem universe state (filled by run() just before it returns
  /// or rethrows).
  struct Report {
    FaultStats faults;
    ReliableStats reliable;
    /// Final detector view per rank (Finished for ranks that returned
    /// normally when the detector is on; Alive when it is off).
    std::vector<RankStatus> rank_status;
    std::vector<int> killed_ranks;  ///< ranks the fault plan killed
    int ranks_failed = 0;           ///< detector-confirmed deaths
    /// what() per rank of the exception that escaped it ("" = none).
    std::vector<std::string> rank_errors;
    /// Per-rank telemetry time-series, drained from the hub at exit
    /// (empty unless TDG_TELEMETRY enabled a sampler; see
    /// core/telemetry.hpp).
    std::vector<RankTelemetry> telemetry;
  };

  /// Spawn `nranks` threads, run `fn(comm)` on each, join. If rank
  /// functions throw, the exception of the lowest-numbered failing rank is
  /// rethrown on the joining thread after every rank has exited (subject
  /// to Options::tolerate_killed_ranks), so distributed tests can assert
  /// on failures instead of terminating.
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  Options opts, Report* report);
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  Options opts) {
    run(nranks, fn, std::move(opts), nullptr);
  }
  static void run(int nranks, const std::function<void(Comm&)>& fn) {
    run(nranks, fn, Options{}, nullptr);
  }
};

}  // namespace tdg::mpi
