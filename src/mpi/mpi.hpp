// In-process MPI-like message-passing substrate: ranks are threads of one
// process, exchanging messages through matched mailboxes.
//
// This reproduces the MPI semantics the paper's interoperability study
// depends on: nonblocking point-to-point with an eager protocol below a
// size threshold and a rendezvous protocol above it (Section 4.1: O(1) and
// O(s) byte requests are eager, O(s^2) use rendezvous), nonblocking
// allreduce collectives, and test/wait progress probing suitable for
// polling at OpenMP scheduling points.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace tdg::mpi {

/// Reduction operator for allreduce.
enum class Op { Min, Max, Sum };

namespace detail {
struct ReqState {
  std::atomic<bool> done{false};
};
struct World;
}  // namespace detail

/// Handle to a nonblocking operation. Copyable; all copies observe the same
/// completion state.
class Request {
 public:
  Request() = default;
  bool valid() const { return state_ != nullptr; }
  /// True once the operation has completed (buffer reusable / data
  /// delivered). Does not block.
  bool done() const {
    return state_ == nullptr ||
           state_->done.load(std::memory_order_acquire);
  }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::ReqState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ReqState> state_;
};

/// Traffic counters for one rank (communication-profiling substrate).
struct CommStats {
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t eager_sends = 0;
  std::uint64_t rendezvous_sends = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduces = 0;
};

/// A communicator bound to one rank of a Universe. All members may be
/// called only from that rank's thread (like an MPI process), except
/// `test`, which is thread-safe so OpenMP workers can poll requests.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Nonblocking send. Eager below the universe's threshold (the payload
  /// is staged; the request completes immediately), rendezvous above it
  /// (the request completes when the receiver matches and copies).
  Request isend(const void* buf, std::size_t bytes, int dest, int tag);
  /// Nonblocking receive with exact (src, tag) matching, non-overtaking.
  Request irecv(void* buf, std::size_t bytes, int src, int tag);

  /// Nonblocking elementwise allreduce over doubles. All ranks must call
  /// with the same count and op; calls match by per-rank sequence number.
  Request iallreduce(const double* sendbuf, double* recvbuf,
                     std::size_t count, Op op);

  /// Blocking helpers.
  void send(const void* buf, std::size_t bytes, int dest, int tag) {
    wait(isend(buf, bytes, dest, tag));
  }
  void recv(void* buf, std::size_t bytes, int src, int tag) {
    wait(irecv(buf, bytes, src, tag));
  }
  void allreduce(const double* sendbuf, double* recvbuf, std::size_t count,
                 Op op) {
    wait(iallreduce(sendbuf, recvbuf, count, op));
  }
  void barrier();

  /// Thread-safe completion probe (MPI_Test).
  static bool test(const Request& r) { return r.done(); }
  /// Spin-wait with yield (MPI_Wait).
  void wait(const Request& r) const;
  void waitall(const std::vector<Request>& rs) const;

  const CommStats& stats() const { return stats_; }

 private:
  friend class Universe;
  Comm(detail::World& world, int rank) : world_(&world), rank_(rank) {}

  detail::World* world_;
  int rank_;
  std::uint64_t coll_seq_ = 0;
  CommStats stats_;
};

/// A set of ranks running as threads of this process.
class Universe {
 public:
  struct Options {
    std::size_t eager_threshold = 8 * 1024;  ///< bytes
  };

  /// Spawn `nranks` threads, run `fn(comm)` on each, join.
  static void run(int nranks, const std::function<void(Comm&)>& fn,
                  Options opts);
  static void run(int nranks, const std::function<void(Comm&)>& fn) {
    run(nranks, fn, Options{});
  }
};

}  // namespace tdg::mpi
